// Replica-aware source selection: given several live copies of an object
// (the primary, registered replicas, and destinations of transfers still in
// flight), pick the copy the consumer should pull from. This extends the
// paper's topology-aware scheduling (§4.3.3) from "how do I route this
// transfer" to "which copy do I transfer at all": the second and later
// consumers of a fan-out edge pull from the nearest fresh replica instead of
// re-loading the producer GPU's links, turning N-way fan-out into a
// multicast chain.
package pathsel

import (
	"grouter/internal/fabric"
)

// SourceCandidate is one possible source location for a coalesced Get.
type SourceCandidate struct {
	// Loc is where the candidate copy lives (or will live).
	Loc fabric.Location
	// Pending marks a copy still in flight: usable only after its transfer
	// completes, so it is discounted against resident copies.
	Pending bool
	// Chainers counts consumers already planning to pull from this candidate;
	// its expected bandwidth is shared among them.
	Chainers int
}

// pendingDiscount halves a pending candidate's score: chaining pays the
// remaining in-flight time before its bytes exist.
const pendingDiscount = 0.5

// ChooseSource scores every candidate by the available bandwidth of the
// canonical path from the candidate to dst — the single-path estimate folds
// topology distance (NVLink vs PCIe vs NIC capacities) and current load
// (netsim's unallocated bandwidth per link) into one figure — and returns
// the index of the best, or -1 when cands is empty. Candidates whose path
// crosses a failed link score zero but remain eligible, so a fully-faulted
// candidate set still returns a deterministic choice (index order breaks
// ties, so callers should list the primary first).
func ChooseSource(f *fabric.Fabric, dst fabric.Location, cands []SourceCandidate) int {
	best, bestScore := -1, -1.0
	for i, c := range cands {
		s := sourceScore(f, c, dst)
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// sourceScore estimates the bandwidth dst would see pulling from c now.
func sourceScore(f *fabric.Fabric, c SourceCandidate, dst fabric.Location) float64 {
	if c.Loc == dst {
		// Already resident at the destination; nothing beats it.
		return 1e18
	}
	links, _ := f.SinglePath(c.Loc, dst)
	if len(links) == 0 {
		return 0
	}
	if !f.Net.PathUp(links) {
		return 0
	}
	avail := -1.0
	for _, id := range links {
		free := f.Net.FreeOn(id)
		if avail < 0 || free < avail {
			avail = free
		}
	}
	if avail < 0 {
		avail = 0
	}
	// A saturated path still moves data under fair sharing: floor the score
	// at a sliver of capacity so a loaded NVLink replica outranks an idle but
	// host-mediated one only when it genuinely has headroom.
	if capBps := f.Net.PathBps(links); avail < capBps*1e-3 {
		avail = capBps * 1e-3
	}
	if c.Pending {
		avail *= pendingDiscount
	}
	// Bandwidth is shared with consumers already chaining off this copy.
	avail /= float64(1 + c.Chainers)
	return avail
}
