package pathsel

import (
	"testing"

	"grouter/internal/topology"
)

func v100Selector() *Selector {
	return New(topology.NewCluster(topology.DGXV100(), 1).Node(0))
}

func TestDirectPairGetsParallelPaths(t *testing.T) {
	s := v100Selector()
	a := s.Select(0, 3, 0)
	if a == nil {
		t.Fatal("no assignment for connected pair")
	}
	if len(a.Paths) < 2 {
		t.Fatalf("paths = %v, want parallel paths on an idle mesh", a.Paths)
	}
	// First path must be the direct one (shortest first).
	if len(a.Paths[0]) != 2 {
		t.Errorf("first path %v is not direct", a.Paths[0])
	}
	// Aggregate exceeds the single direct link (48 GB/s).
	if a.TotalBW() <= topology.GBps(48) {
		t.Errorf("aggregate bw = %.0f, want > direct 48 GB/s", a.TotalBW())
	}
}

func TestWeaklyConnectedPairUsesIndirect(t *testing.T) {
	s := v100Selector()
	// 0 and 5 have no direct NVLink.
	a := s.Select(0, 5, 0)
	if a == nil {
		t.Fatal("expected indirect NVLink paths for 0→5")
	}
	for _, p := range a.Paths {
		if len(p) < 3 {
			t.Errorf("path %v should be indirect", p)
		}
	}
}

func TestSamePairNoAssignment(t *testing.T) {
	s := v100Selector()
	if a := s.Select(2, 2, 0); a != nil {
		t.Errorf("self pair got %v", a.Paths)
	}
}

func TestNoNVLinkReturnsNil(t *testing.T) {
	s := New(topology.NewCluster(topology.QuadA10(), 1).Node(0))
	if a := s.Select(0, 1, 0); a != nil {
		t.Errorf("A10 (no NVLink) got assignment %v", a.Paths)
	}
}

func TestSwitchedFabricSinglePath(t *testing.T) {
	s := New(topology.NewCluster(topology.DGXA100(), 1).Node(0))
	a := s.Select(1, 6, 0)
	if a == nil || len(a.Paths) != 1 {
		t.Fatalf("switched assignment = %+v, want single path", a)
	}
	if a.BWs[0] != topology.GBps(300) {
		t.Errorf("switch path bw = %.0f, want 300 GB/s", a.BWs[0])
	}
}

func TestContentionAvoidance(t *testing.T) {
	s := v100Selector()
	first := s.Select(0, 3, 0)
	second := s.Select(1, 2, 0)
	if second == nil {
		t.Fatal("second selection failed")
	}
	// The two assignments must not share any fully-reserved directed edge in
	// phase-1 (idle) paths. Verify the matrix never goes negative.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if s.residual(i, j) < 0 {
				t.Errorf("edge %d→%d over-reserved", i, j)
			}
		}
	}
	s.Release(first)
	s.Release(second)
	// After release the matrix is clean.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if s.used[i][j] != 0 {
				t.Errorf("edge %d→%d still reserved after release", i, j)
			}
		}
	}
}

func TestReleaseIdempotent(t *testing.T) {
	s := v100Selector()
	a := s.Select(0, 4, 0)
	s.Release(a)
	s.Release(a) // must not double-credit
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if s.used[i][j] != 0 {
				t.Fatalf("matrix dirty after double release")
			}
		}
	}
	s.Release(nil) // no-op
}

func TestDirectPathReassignment(t *testing.T) {
	s := v100Selector()
	// Occupy paths between 0 and 4; indirect routes may borrow edges.
	other := s.Select(0, 4, 0)
	if other == nil {
		t.Fatal("setup failed")
	}
	borrowed := usesEdgeAsIntermediate(other, 0, 3) || usesEdgeAsIntermediate(other, 3, 7)
	// Now a transfer that needs the 0→3 direct edge arrives.
	mine := s.Select(0, 3, 0)
	if mine == nil {
		t.Fatal("selection failed under contention")
	}
	// The direct path must be among my paths with positive bandwidth.
	foundDirect := false
	for i, p := range mine.Paths {
		if len(p) == 2 && mine.BWs[i] > 0 {
			foundDirect = true
		}
	}
	if borrowed && !foundDirect {
		t.Error("direct path not recovered despite reassignment opportunity")
	}
	if !foundDirect && s.residual(0, 3) > 0 {
		t.Error("direct edge free but not used")
	}
}

func TestBusyPathSharingWhenSaturated(t *testing.T) {
	s := v100Selector()
	// Saturate everything around 0→3 with repeated selections.
	for i := 0; i < 6; i++ {
		if s.Select(0, 3, 0) == nil {
			t.Fatal("selection failed")
		}
	}
	// Another request still gets at least one (shared) path.
	a := s.Select(0, 3, 0)
	if a == nil || len(a.Paths) == 0 {
		t.Fatal("saturated selection should still return a shared path")
	}
}

func TestLinksConversion(t *testing.T) {
	s := v100Selector()
	a := s.Select(0, 3, 0)
	links := s.Links(a)
	if len(links) != len(a.Paths) {
		t.Fatalf("links = %d sets, want %d", len(links), len(a.Paths))
	}
	for i, set := range links {
		if len(set) != len(a.Paths[i])-1 {
			t.Errorf("path %v produced %d links", a.Paths[i], len(set))
		}
	}
}

// BenchmarkSelect measures one warm path selection; the paper budgets <10µs
// after pruning/caching (§4.3.3).
func BenchmarkSelect(b *testing.B) {
	s := v100Selector()
	// Warm the path cache.
	s.Release(s.Select(0, 5, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := s.Select(0, 5, 0)
		s.Release(a)
	}
}
