package pathsel

import (
	"testing"
	"time"

	"grouter/internal/fabric"
	"grouter/internal/netsim"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

func sourceFabric(t *testing.T) (*sim.Engine, *fabric.Fabric) {
	t.Helper()
	e := sim.NewEngine()
	f := fabric.New(e, topology.DGXV100(), 2)
	return e, f
}

func TestChooseSourceEmpty(t *testing.T) {
	_, f := sourceFabric(t)
	if got := ChooseSource(f, fabric.Location{Node: 0, GPU: 0}, nil); got != -1 {
		t.Fatalf("ChooseSource(nil) = %d, want -1", got)
	}
}

// TestChooseSourcePrefersLocal checks the trivial dominance: a copy already
// at the destination beats everything else.
func TestChooseSourcePrefersLocal(t *testing.T) {
	_, f := sourceFabric(t)
	dst := fabric.Location{Node: 0, GPU: 2}
	cands := []SourceCandidate{
		{Loc: fabric.Location{Node: 0, GPU: 1}},
		{Loc: dst},
		{Loc: fabric.Location{Node: 1, GPU: 0}},
	}
	if got := ChooseSource(f, dst, cands); got != 1 {
		t.Fatalf("ChooseSource = %d, want the co-located candidate (1)", got)
	}
}

// TestChooseSourcePrefersIntraNode checks the topology-distance half of the
// score: an NVLink-reachable replica on the consumer's node beats the primary
// a NIC hop away.
func TestChooseSourcePrefersIntraNode(t *testing.T) {
	_, f := sourceFabric(t)
	dst := fabric.Location{Node: 1, GPU: 1}
	cands := []SourceCandidate{
		{Loc: fabric.Location{Node: 0, GPU: 0}}, // primary, cross-node
		{Loc: fabric.Location{Node: 1, GPU: 0}}, // replica, same node
	}
	if got := ChooseSource(f, dst, cands); got != 1 {
		t.Fatalf("ChooseSource = %d, want the intra-node replica (1)", got)
	}
}

// TestChooseSourceTiesFavourFirst checks deterministic tie-breaking: equal
// scores go to the earlier index, which callers use to prefer the primary.
func TestChooseSourceTiesFavourFirst(t *testing.T) {
	_, f := sourceFabric(t)
	dst := fabric.Location{Node: 1, GPU: 4}
	cands := []SourceCandidate{
		{Loc: fabric.Location{Node: 0, GPU: 0}},
		{Loc: fabric.Location{Node: 0, GPU: 0}},
	}
	if got := ChooseSource(f, dst, cands); got != 0 {
		t.Fatalf("ChooseSource = %d, want 0 on a tie", got)
	}
}

// TestChooseSourceDiscountsPending checks the in-flight discount and chain
// spreading: with identical locations, a resident copy beats a pending one,
// and among pending copies the one with fewer chained consumers wins.
func TestChooseSourceDiscountsPending(t *testing.T) {
	_, f := sourceFabric(t)
	dst := fabric.Location{Node: 0, GPU: 3}
	loc := fabric.Location{Node: 0, GPU: 1}
	cands := []SourceCandidate{
		{Loc: loc, Pending: true},
		{Loc: loc},
	}
	if got := ChooseSource(f, dst, cands); got != 1 {
		t.Fatalf("ChooseSource = %d, want the resident copy (1)", got)
	}
	cands = []SourceCandidate{
		{Loc: loc, Pending: true, Chainers: 3},
		{Loc: loc, Pending: true, Chainers: 0},
	}
	if got := ChooseSource(f, dst, cands); got != 1 {
		t.Fatalf("ChooseSource = %d, want the unchained flight (1)", got)
	}
}

// TestChooseSourceAvoidsLoadedPath checks the live-bandwidth half of the
// score: when the canonical path from one candidate is carrying a flow, the
// other candidate's idle path wins.
func TestChooseSourceAvoidsLoadedPath(t *testing.T) {
	e, f := sourceFabric(t)
	dst := fabric.Location{Node: 0, GPU: 3}
	busy := fabric.Location{Node: 0, GPU: 1}
	idle := fabric.Location{Node: 0, GPU: 2}
	links, _ := f.SinglePath(busy, dst)
	if len(links) == 0 {
		t.Fatal("no canonical path busy→dst")
	}
	got := -2
	e.Go("choose", func(p *sim.Proc) {
		f.Net.Start("load", links, 1e9, netsim.Options{})
		// Rate allocation happens on the next engine event; score after it.
		p.Sleep(time.Microsecond)
		got = ChooseSource(f, dst, []SourceCandidate{{Loc: busy}, {Loc: idle}})
	})
	e.Run(0)
	if got != 1 {
		t.Fatalf("ChooseSource = %d, want the idle candidate (1)", got)
	}
}

// TestChooseSourceFaultedStillChooses checks that an all-faulted candidate
// set still returns a deterministic index instead of -1 (the caller retries
// or re-materializes; source selection never wedges).
func TestChooseSourceFaultedStillChooses(t *testing.T) {
	_, f := sourceFabric(t)
	dst := fabric.Location{Node: 0, GPU: 3}
	a := fabric.Location{Node: 0, GPU: 1}
	b := fabric.Location{Node: 0, GPU: 2}
	for _, src := range []fabric.Location{a, b} {
		links, _ := f.SinglePath(src, dst)
		for _, id := range links {
			f.Net.FailLink(id)
		}
	}
	if got := ChooseSource(f, dst, []SourceCandidate{{Loc: a}, {Loc: b}}); got != 0 {
		t.Fatalf("ChooseSource = %d, want 0 (first of all-zero scores)", got)
	}
}
