package pathsel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"grouter/internal/topology"
)

// TestPropertyReserveReleaseBalances runs random Select/Release sequences
// and checks that (1) the usage matrix never exceeds link capacity, and
// (2) releasing everything returns the matrix to zero.
func TestPropertyReserveReleaseBalances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(topology.NewCluster(topology.DGXV100(), 1).Node(0))
		var live []*Assignment
		for step := 0; step < 30; step++ {
			if rng.Intn(3) != 0 || len(live) == 0 {
				src := rng.Intn(8)
				dst := rng.Intn(8)
				if src == dst {
					continue
				}
				if a := s.Select(src, dst, 0); a != nil {
					live = append(live, a)
				}
			} else {
				i := rng.Intn(len(live))
				s.Release(live[i])
				live = append(live[:i], live[i+1:]...)
			}
			// Invariant: no directed edge over capacity.
			for i := 0; i < 8; i++ {
				for j := 0; j < 8; j++ {
					if s.used[i][j] > s.spec.NVLinkBps(i, j)+1e-6 {
						return false
					}
				}
			}
		}
		for _, a := range live {
			s.Release(a)
		}
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if s.used[i][j] != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAssignmentsAreValidPaths checks that every selected path is a
// simple NVLink path between the requested endpoints.
func TestPropertyAssignmentsAreValidPaths(t *testing.T) {
	f := func(a, b uint8) bool {
		src, dst := int(a)%8, int(b)%8
		if src == dst {
			return true
		}
		s := New(topology.NewCluster(topology.DGXV100(), 1).Node(0))
		asg := s.Select(src, dst, 0)
		if asg == nil {
			return true
		}
		for _, p := range asg.Paths {
			if p[0] != src || p[len(p)-1] != dst {
				return false
			}
			seen := map[int]bool{}
			for i, g := range p {
				if seen[g] {
					return false
				}
				seen[g] = true
				if i > 0 && s.spec.NVLinkBps(p[i-1], g) == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
