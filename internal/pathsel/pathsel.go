// Package pathsel implements GROUTER's topology-aware transfer scheduling
// (§4.3.3, Algorithm 1): contention-aware selection of parallel NVLink paths
// between a source and destination GPU on one node.
//
// The selector maintains a bandwidth-usage matrix over the node's NVLink
// adjacency. Selection proceeds in the paper's two phases: first fully idle
// paths, shortest first, each reserving its bottleneck bandwidth; then, if
// the source's outgoing or destination's incoming capacity is still
// unsaturated, busy paths whose residual bandwidth can be balanced with the
// functions already using them. Direct paths take priority: a function
// holding a direct edge as an intermediate hop of an indirect route is
// rerouted when possible.
package pathsel

import (
	"time"

	"grouter/internal/topology"
)

// SelectLatency is the control-plane cost of one path selection; the paper
// reports <10µs on 4–8 GPU servers after pruning.
const SelectLatency = 8 * time.Microsecond

// DefaultMaxHops bounds path enumeration; on 8-GPU meshes two intermediate
// hops already expose all useful parallelism.
const DefaultMaxHops = 3

// Assignment is a set of reserved parallel paths for one transfer.
type Assignment struct {
	// Paths are GPU-hop sequences (e.g. [4 6 7 1]); BWs the bandwidth
	// reserved on each (its bottleneck at selection time).
	Paths [][]int
	BWs   []float64

	src, dst int
	released bool
}

// TotalBW returns the aggregate reserved bandwidth.
func (a *Assignment) TotalBW() float64 {
	t := 0.0
	for _, b := range a.BWs {
		t += b
	}
	return t
}

// Selector tracks NVLink bandwidth usage on one node and answers path
// queries.
type Selector struct {
	node *topology.Node
	spec *topology.Spec
	// used[i][j] is reserved bandwidth on the directed edge i→j.
	used   [][]float64
	active map[*Assignment]struct{}

	// Avail, when non-nil, reports whether the directed NVLink edge i→j is
	// currently usable. Edges reported unavailable contribute zero residual
	// and are excluded from selection, so re-planning after a link failure
	// routes around dead NVLink edges (and Select returns nil — PCIe
	// fallback — when the pair is cut off entirely).
	Avail func(i, j int) bool
}

// New builds a selector for one node.
func New(node *topology.Node) *Selector {
	n := node.Spec.NumGPUs
	used := make([][]float64, n)
	for i := range used {
		used[i] = make([]float64, n)
	}
	return &Selector{node: node, spec: node.Spec, used: used, active: make(map[*Assignment]struct{})}
}

// residual returns free bandwidth on directed edge i→j (0 when the edge is
// failed).
func (s *Selector) residual(i, j int) float64 {
	if s.Avail != nil && !s.Avail(i, j) {
		return 0
	}
	r := s.spec.NVLinkBps(i, j) - s.used[i][j]
	if r < 0 {
		return 0
	}
	return r
}

// pathAvail reports whether every edge of the GPU-hop path is usable.
func (s *Selector) pathAvail(path []int) bool {
	if s.Avail == nil {
		return true
	}
	for i := 0; i+1 < len(path); i++ {
		if !s.Avail(path[i], path[i+1]) {
			return false
		}
	}
	return true
}

// outResidual sums free bandwidth leaving g; inResidual entering g.
func (s *Selector) outResidual(g int) float64 {
	t := 0.0
	for j := 0; j < s.spec.NumGPUs; j++ {
		t += s.residual(g, j)
	}
	return t
}

func (s *Selector) inResidual(g int) float64 {
	t := 0.0
	for i := 0; i < s.spec.NumGPUs; i++ {
		t += s.residual(i, g)
	}
	return t
}

// pathResidual returns the bottleneck residual along a GPU-hop path, and
// whether every edge is completely idle.
func (s *Selector) pathResidual(path []int) (bottleneck float64, idle bool) {
	bottleneck = -1
	idle = true
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		r := s.residual(a, b)
		if bottleneck < 0 || r < bottleneck {
			bottleneck = r
		}
		if s.used[a][b] > 0 {
			idle = false
		}
	}
	if bottleneck < 0 {
		bottleneck = 0
	}
	return bottleneck, idle
}

func (s *Selector) reserve(path []int, bw float64) {
	for i := 0; i+1 < len(path); i++ {
		s.used[path[i]][path[i+1]] += bw
	}
}

func (s *Selector) unreserve(path []int, bw float64) {
	for i := 0; i+1 < len(path); i++ {
		s.used[path[i]][path[i+1]] -= bw
		if s.used[path[i]][path[i+1]] < 1e-9 {
			s.used[path[i]][path[i+1]] = 0
		}
	}
}

// usesEdgeAsIntermediate reports whether assignment a routes through the
// directed edge (i,j) on a path where (i,j) is not the whole path (i.e. an
// indirect route borrowing the edge).
func usesEdgeAsIntermediate(a *Assignment, i, j int) bool {
	for _, p := range a.Paths {
		if len(p) <= 2 {
			continue
		}
		for k := 0; k+1 < len(p); k++ {
			if p[k] == i && p[k+1] == j {
				return true
			}
		}
	}
	return false
}

// Select reserves parallel NVLink paths from src to dst (Algorithm 1) and
// returns the assignment, or nil when the pair has no NVLink connectivity
// within maxHops (callers fall back to PCIe). maxHops <= 0 uses
// DefaultMaxHops.
func (s *Selector) Select(src, dst, maxHops int) *Assignment {
	if src == dst {
		return nil
	}
	if maxHops <= 0 {
		maxHops = DefaultMaxHops
	}
	if s.spec.Switched {
		if !s.pathAvail([]int{src, dst}) {
			return nil
		}
		// NVSwitch: the single switch path at port bandwidth.
		a := &Assignment{src: src, dst: dst,
			Paths: [][]int{{src, dst}}, BWs: []float64{s.spec.SwitchPortBps}}
		s.active[a] = struct{}{}
		return a
	}

	cands := s.node.NVLinkPaths(src, dst, maxHops)
	if len(cands) == 0 {
		return nil
	}

	// Direct-path priority (§4.3.3): if the direct edge exists but is held
	// by another function's indirect route, try to reroute that function.
	if s.spec.NVLinkBps(src, dst) > 0 && s.used[src][dst] > 0 {
		for other := range s.active {
			if usesEdgeAsIntermediate(other, src, dst) {
				s.tryReroute(other, src, dst)
			}
		}
	}

	a := &Assignment{src: src, dst: dst}
	taken := func(path []int) bool {
		// Paths within one assignment must be edge-disjoint.
		for _, q := range a.Paths {
			for i := 0; i+1 < len(q); i++ {
				for k := 0; k+1 < len(path); k++ {
					if q[i] == path[k] && q[i+1] == path[k+1] {
						return true
					}
				}
			}
		}
		return false
	}

	// Phase 1: idle paths, shortest first. A failed edge zeroes a path's
	// residual, so dead paths are skipped rather than reserved.
	for {
		var best []int
		for _, p := range cands {
			if taken(p) {
				continue
			}
			if bw, idle := s.pathResidual(p); idle && bw > 0 {
				best = p
				break
			}
		}
		if best == nil {
			break
		}
		bw, _ := s.pathResidual(best)
		s.reserve(best, bw)
		a.Paths = append(a.Paths, best)
		a.BWs = append(a.BWs, bw)
		if s.outResidual(src) == 0 || s.inResidual(dst) == 0 {
			break
		}
	}

	// Phase 2: busy paths with bandwidth balancing — reserve the residual
	// (the simulator's fair sharing splits the link with the running
	// function, which is the balancing the paper describes).
	for s.outResidual(src) > 0 && s.inResidual(dst) > 0 {
		var best []int
		bestBW := 0.0
		for _, p := range cands {
			if taken(p) {
				continue
			}
			if bw, _ := s.pathResidual(p); bw > bestBW {
				best, bestBW = p, bw
			}
		}
		if best == nil {
			break
		}
		s.reserve(best, bestBW)
		a.Paths = append(a.Paths, best)
		a.BWs = append(a.BWs, bestBW)
	}

	if len(a.Paths) == 0 {
		// Everything saturated: share the shortest still-usable path. When
		// every candidate crosses a failed edge the pair is NVLink-cut and
		// the caller falls back to PCIe.
		for _, p := range cands {
			if s.pathAvail(p) {
				a.Paths = append(a.Paths, p)
				a.BWs = append(a.BWs, s.node.PathBandwidth(p)/2)
				break
			}
		}
		if len(a.Paths) == 0 {
			return nil
		}
	}
	s.active[a] = struct{}{}
	return a
}

// tryReroute moves other's path through edge (i,j) to an alternative idle
// route; on failure the original reservation stands.
func (s *Selector) tryReroute(other *Assignment, i, j int) {
	for idx, p := range other.Paths {
		uses := false
		for k := 0; k+1 < len(p); k++ {
			if p[k] == i && p[k+1] == j {
				uses = true
				break
			}
		}
		if !uses || len(p) <= 2 {
			continue
		}
		bw := other.BWs[idx]
		s.unreserve(p, bw)
		var alt []int
		for _, cand := range s.node.NVLinkPaths(other.src, other.dst, DefaultMaxHops) {
			crosses := false
			for k := 0; k+1 < len(cand); k++ {
				if cand[k] == i && cand[k+1] == j {
					crosses = true
					break
				}
			}
			if crosses {
				continue
			}
			if res, idle := s.pathResidual(cand); idle && res >= bw {
				alt = cand
				break
			}
		}
		if alt == nil {
			s.reserve(p, bw) // restore
			continue
		}
		s.reserve(alt, bw)
		other.Paths[idx] = alt
	}
}

// Release returns an assignment's bandwidth to the matrix. Releasing twice
// is a no-op.
func (s *Selector) Release(a *Assignment) {
	if a == nil || a.released {
		return
	}
	a.released = true
	delete(s.active, a)
	if s.spec.Switched {
		return
	}
	for i, p := range a.Paths {
		s.unreserve(p, a.BWs[i])
	}
}

// Links converts an assignment to per-path link IDs for the transfer engine.
func (s *Selector) Links(a *Assignment) [][]topology.LinkID {
	out := make([][]topology.LinkID, 0, len(a.Paths))
	for _, p := range a.Paths {
		out = append(out, s.node.NVLinkPathLinks(p))
	}
	return out
}
