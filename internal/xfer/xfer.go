// Package xfer executes data transfers over the simulated fabric: it splits
// data into chunks, groups chunks into batches, distributes the bytes over
// one or more link paths proportionally to path capacity, and drives the
// resulting flows through the network simulator.
//
// The chunk/batch pipeline of §4.3.1–4.3.2 is modeled at flow level: the
// per-chunk cudaMemcpyAsync launches and per-batch scheduling points are
// charged as fixed latency constants (they pipeline with the transfer, so
// only the first batch's setup is on the critical path), while preemption at
// batch boundaries is subsumed by the simulator recomputing rates at every
// flow arrival and departure — a strictly finer-grained version of the same
// mechanism.
package xfer

import (
	"errors"
	"fmt"
	"math"
	"time"

	"grouter/internal/fabric"
	"grouter/internal/memsim"
	"grouter/internal/metrics"
	"grouter/internal/netsim"
	"grouter/internal/obs"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

// Transfer tuning constants (paper defaults).
const (
	// DefaultChunkBytes is the transfer chunk size (§4.3.1: 2 MB).
	DefaultChunkBytes = int64(2) << 20
	// DefaultBatchChunks is the number of chunks per batch (§4.3.2: 5).
	DefaultBatchChunks = 5

	// SetupLatency is the one-time cost of initiating a transfer (IPC handle
	// mapping, stream selection).
	SetupLatency = 30 * time.Microsecond
	// BatchLatency is the scheduling cost of the first batch; later batches
	// pipeline behind data movement.
	BatchLatency = 20 * time.Microsecond
	// HostStackLatency is the extra per-transfer cost of a host-mediated
	// network transfer (kernel TCP stack vs GPUDirect RDMA).
	HostStackLatency = 200 * time.Microsecond
)

// Retry defaults: a failed attempt backs off exponentially from
// DefaultBackoffBase, doubling per attempt up to DefaultBackoffCap, for at
// most DefaultMaxAttempts attempts total.
const (
	DefaultMaxAttempts = 4
	DefaultBackoffBase = 50 * time.Microsecond
	DefaultBackoffCap  = 5 * time.Millisecond
)

// Typed request/transfer errors.
var (
	// ErrNoPaths is returned for a request with no candidate paths.
	ErrNoPaths = errors.New("xfer: request has no paths")
	// ErrZeroBytes is returned for a request with a non-positive byte count.
	ErrZeroBytes = errors.New("xfer: request has no bytes")
	// ErrDeadline is returned when a transfer's deadline expires; in-flight
	// flows are canceled.
	ErrDeadline = errors.New("xfer: deadline exceeded")
	// ErrPathsDown is returned when every candidate path crosses a failed
	// link and re-planning produced no alternative.
	ErrPathsDown = errors.New("xfer: no viable path")
)

// RetryPolicy bounds a transfer's recovery from link failures.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (1 = no retry); 0 uses
	// DefaultMaxAttempts.
	MaxAttempts int
	// BackoffBase is the sleep before the first retry, doubled per attempt;
	// 0 uses DefaultBackoffBase.
	BackoffBase time.Duration
	// BackoffCap bounds the backoff; 0 uses DefaultBackoffCap.
	BackoffCap time.Duration
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.MaxAttempts == 0 {
		r.MaxAttempts = DefaultMaxAttempts
	}
	if r.BackoffBase == 0 {
		r.BackoffBase = DefaultBackoffBase
	}
	if r.BackoffCap == 0 {
		r.BackoffCap = DefaultBackoffCap
	}
	return r
}

// backoff returns the sleep before the given retry attempt (attempt >= 1):
// base << (attempt-1), capped. Deterministic — no jitter — so fault scenarios
// replay identically.
func (r RetryPolicy) backoff(attempt int) time.Duration {
	d := r.BackoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= r.BackoffCap {
			return r.BackoffCap
		}
	}
	if d > r.BackoffCap {
		d = r.BackoffCap
	}
	return d
}

// Path is one candidate route for a transfer.
type Path struct {
	Links []topology.LinkID
	// Bps is the path's bottleneck capacity, used for proportional byte
	// splitting across parallel paths.
	Bps float64
}

// PathOf builds a Path, deriving Bps from the network's link capacities.
func PathOf(net *netsim.Network, links []topology.LinkID) Path {
	return Path{Links: links, Bps: net.PathBps(links)}
}

// Request describes one transfer.
type Request struct {
	Label string
	Bytes int64
	Paths []Path
	// Track is the trace lane the transfer's span is recorded on (typically
	// the request sequence number); 0 is the shared default lane. Ignored
	// when tracing is disabled.
	Track int32
	// Opt carries rate-control constraints applied to every flow of the
	// transfer (min rates are split across paths proportionally).
	Opt netsim.Options
	// HostStack adds HostStackLatency (host-mediated network transfer).
	HostStack bool
	// Pinned, when non-nil, stages the transfer through a node's shared
	// circular pinned buffer: the transfer holds min(Bytes, buffer) bytes of
	// the gate for its duration.
	Pinned *memsim.ByteGate

	// Deadline, when positive, bounds the transfer's total virtual time
	// (measured from the Transfer call). On expiry in-flight flows are
	// canceled and Transfer returns ErrDeadline.
	Deadline time.Duration
	// Retry bounds recovery from link failures; the zero value uses the
	// package defaults.
	Retry RetryPolicy
	// Replan, when non-nil, is consulted before each retry attempt to
	// re-select the candidate paths (e.g. falling back from NVLink to PCIe
	// after a persistent failure). Returning nil keeps the previous paths.
	Replan func(attempt int) []Path
}

// validate checks the request's static invariants.
func (r *Request) validate() error {
	if r.Bytes <= 0 {
		return fmt.Errorf("%w: %q has %d bytes", ErrZeroBytes, r.Label, r.Bytes)
	}
	if len(r.Paths) == 0 {
		return fmt.Errorf("%w: %q", ErrNoPaths, r.Label)
	}
	return nil
}

// Manager executes transfers on a fabric.
type Manager struct {
	Fabric      *fabric.Fabric
	ChunkBytes  int64
	BatchChunks int

	// Scratch reused across the alive-filter → flow-launch window of each
	// attempt. The window contains no yield point, so concurrent transfers
	// (which interleave only at yields in the cooperative simulator) cannot
	// observe each other's scratch.
	aliveScratch []Path
	splitScratch []int64
}

// NewManager returns a manager with paper-default chunking.
func NewManager(f *fabric.Fabric) *Manager {
	return &Manager{Fabric: f, ChunkBytes: DefaultChunkBytes, BatchChunks: DefaultBatchChunks}
}

// Transfer runs the request to completion from process p and returns the
// elapsed virtual time. Flows killed by link failures are retried with
// exponential backoff (only the undelivered bytes are re-sent), consulting
// req.Replan for fresh paths; paths crossing currently-failed links are
// skipped. A nil error means every byte arrived.
func (m *Manager) Transfer(p *sim.Proc, req Request) (time.Duration, error) {
	start := p.Now()
	if err := req.validate(); err != nil {
		return 0, err
	}
	tr := obs.TracerOf(m.Fabric.Engine)
	var span obs.SpanID
	if tr != nil {
		span = tr.BeginOn(req.Track, obs.CatTransfer, req.Label)
		tr.SetAttrInt(span, "bytes", req.Bytes)
	}
	setup := SetupLatency + BatchLatency
	if req.HostStack {
		setup += HostStackLatency
	}
	p.Sleep(setup)
	obs.Account(p, obs.CatSetup, setup)

	var held int64
	if req.Pinned != nil {
		gateStart := p.Now()
		held = req.Pinned.Acquire(p, req.Bytes)
		obs.Account(p, obs.CatQueue, p.Now()-gateStart)
	}
	elapsed, err := m.transferAttempts(p, req, start)
	if req.Pinned != nil && held > 0 {
		req.Pinned.Release(held)
	}
	if tr != nil {
		if err != nil {
			tr.SetAttrStr(span, "error", err.Error())
		}
		tr.End(span)
	}
	return elapsed, err
}

// transferAttempts drives the retry loop: each attempt re-sends the bytes
// still undelivered over the currently-alive subset of the candidate paths.
func (m *Manager) transferAttempts(p *sim.Proc, req Request, start time.Duration) (time.Duration, error) {
	deadline := time.Duration(0)
	if req.Deadline > 0 {
		deadline = start + req.Deadline
	}
	pol := req.Retry.withDefaults()
	paths := req.Paths
	bytes := req.Bytes
	tr := obs.TracerOf(m.Fabric.Engine)
	var err error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			metrics.Faults().Retries.Add(1)
			if tr != nil {
				id := tr.InstantOn(req.Track, obs.CatRetry, "retry")
				tr.SetAttrInt(id, "attempt", int64(attempt))
				tr.SetAttrInt(id, "bytes-left", bytes)
			}
			p.Sleep(pol.backoff(attempt))
			obs.Account(p, obs.CatRetry, pol.backoff(attempt))
			if req.Replan != nil {
				if np := req.Replan(attempt); len(np) > 0 {
					paths = np
					metrics.Faults().Replans.Add(1)
					if tr != nil {
						tr.InstantOn(req.Track, obs.CatRetry, "replan")
					}
				}
			}
		}
		if deadline > 0 && p.Now() >= deadline {
			err = ErrDeadline
			break
		}
		alive := m.alivePaths(paths)
		if len(alive) == 0 {
			// Every path is down; back off and hope for a restore or a
			// re-plan on the next attempt.
			err = fmt.Errorf("%w: %q", ErrPathsDown, req.Label)
			continue
		}
		flows := m.startFlows(req.Label, bytes, alive, req.Opt, req.Bytes)
		waitStart := p.Now()
		timedOut := m.awaitFlows(p, flows, deadline)
		obs.Account(p, obs.CatTransfer, p.Now()-waitStart)
		if timedOut {
			metrics.Faults().TransfersFailed.Add(1)
			return p.Now() - start, ErrDeadline
		}
		undelivered := 0.0
		for _, f := range flows {
			if f.Failed() {
				undelivered += f.Remaining()
			}
		}
		if undelivered == 0 {
			if attempt > 0 {
				metrics.Faults().DegradedBytes.Add(bytes)
			}
			return p.Now() - start, nil
		}
		bytes = int64(math.Ceil(undelivered))
		err = fmt.Errorf("xfer: %q lost a path mid-transfer (%d bytes undelivered)", req.Label, bytes)
	}
	metrics.Faults().TransfersFailed.Add(1)
	return p.Now() - start, err
}

// alivePaths filters out paths crossing a failed link. The result aliases the
// manager's scratch buffer and is only valid until the next yield point.
func (m *Manager) alivePaths(paths []Path) []Path {
	alive := m.aliveScratch[:0]
	for _, pa := range paths {
		if m.Fabric.Net.PathUp(pa.Links) {
			alive = append(alive, pa)
		}
	}
	m.aliveScratch = alive[:0]
	return alive
}

// awaitFlows blocks p until every flow reaches a terminal state (done or
// failed), or until the absolute deadline (0 = none) expires — in which case
// the surviving flows are canceled and awaitFlows reports true.
func (m *Manager) awaitFlows(p *sim.Proc, flows []*netsim.Flow, deadline time.Duration) (timedOut bool) {
	if deadline <= 0 {
		for _, f := range flows {
			f.Done().Wait(p)
		}
		return false
	}
	e := m.Fabric.Engine
	agg := sim.NewSignal(e)
	remaining := len(flows)
	for _, f := range flows {
		waitFlow(e, f, func() {
			remaining--
			if remaining == 0 {
				agg.Fire()
			}
		})
	}
	// Daemon: an expiry armed past the natural end of the simulation must not
	// keep Run(0) alive.
	e.ScheduleDaemon(deadline-e.Now(), func() {
		if agg.Fired() {
			return
		}
		timedOut = true
		for _, f := range flows {
			m.Fabric.Net.Cancel(f)
		}
		agg.Fire()
	})
	agg.Wait(p)
	return timedOut
}

// TransferAsync starts the request from event context and returns a signal
// fired on completion. It does not model pinned-buffer backpressure (async
// callers manage their own staging) and does not retry on link failure; an
// invalid request panics, since event context has no error channel.
func (m *Manager) TransferAsync(req Request) *sim.Signal {
	if err := req.validate(); err != nil {
		panic(err)
	}
	done := sim.NewSignal(m.Fabric.Engine)
	setup := SetupLatency + BatchLatency
	if req.HostStack {
		setup += HostStackLatency
	}
	m.Fabric.Engine.Schedule(setup, func() {
		flows := m.startFlows(req.Label, req.Bytes, req.Paths, req.Opt, req.Bytes)
		if len(flows) == 0 {
			done.Fire()
			return
		}
		remaining := len(flows)
		for _, f := range flows {
			f := f
			m.Fabric.Engine.Schedule(0, func() {
				waitFlow(m.Fabric.Engine, f, func() {
					remaining--
					if remaining == 0 {
						done.Fire()
					}
				})
			})
		}
	})
	return done
}

// waitFlow invokes fn when f completes, using a watcher process only when
// the flow is not already done.
func waitFlow(e *sim.Engine, f *netsim.Flow, fn func()) {
	if f.Done().Fired() {
		fn()
		return
	}
	e.Go("flow-watch", func(p *sim.Proc) {
		f.Done().Wait(p)
		fn()
	})
}

// startFlows splits bytes over the given paths and launches flows. origBytes
// is the request's full payload: min-rate reservations are scaled against it
// so a retry re-sending a residue does not inflate its per-byte rate floor.
func (m *Manager) startFlows(label string, bytes int64, paths []Path, opt netsim.Options, origBytes int64) []*netsim.Flow {
	if cap(m.splitScratch) < len(paths) {
		m.splitScratch = make([]int64, len(paths))
	}
	split := splitBytesInto(m.splitScratch[:len(paths)], bytes, paths, m.ChunkBytes)
	flows := make([]*netsim.Flow, 0, len(paths))
	for i, b := range split {
		if b <= 0 {
			continue
		}
		o := opt
		if o.MinRate > 0 {
			o.MinRate = o.MinRate * float64(b) / float64(origBytes)
		}
		flows = append(flows, m.Fabric.Net.Start(label, paths[i].Links, float64(b), o))
	}
	if len(flows) == 0 {
		// Entire payload rounded into path 0.
		flows = append(flows, m.Fabric.Net.Start(label, paths[0].Links, float64(bytes), opt))
	}
	return flows
}

// SplitBytes distributes bytes over paths proportionally to capacity,
// quantized to whole chunks (§4.3.3: chunk sizes scale with path capacity).
// Transfers of at most one chunk use only the fastest path.
func SplitBytes(bytes int64, paths []Path, chunk int64) []int64 {
	return splitBytesInto(make([]int64, len(paths)), bytes, paths, chunk)
}

// splitBytesInto is SplitBytes writing into a caller-provided slice of
// len(paths), so the hot path can reuse a scratch buffer.
func splitBytesInto(out []int64, bytes int64, paths []Path, chunk int64) []int64 {
	for i := range out {
		out[i] = 0
	}
	if bytes <= 0 {
		return out
	}
	if len(paths) == 1 || bytes <= chunk {
		best := 0
		for i := 1; i < len(paths); i++ {
			if paths[i].Bps > paths[best].Bps {
				best = i
			}
		}
		out[best] = bytes
		return out
	}
	total := 0.0
	for _, p := range paths {
		total += p.Bps
	}
	if total <= 0 {
		out[0] = bytes
		return out
	}
	assigned := int64(0)
	for i, p := range paths {
		share := int64(float64(bytes) * p.Bps / total)
		if chunk > 0 {
			share -= share % chunk
		}
		// Float rounding on large payloads can push the proportional shares
		// past the total; clamp so the sum never exceeds bytes (a negative
		// remainder would starve — or go negative on — the fastest path).
		if rest := bytes - assigned; share > rest {
			share = rest
		}
		out[i] = share
		assigned += share
	}
	// Remainder (sub-chunk residue) goes to the fastest path.
	best := 0
	for i := 1; i < len(paths); i++ {
		if paths[i].Bps > paths[best].Bps {
			best = i
		}
	}
	out[best] += bytes - assigned
	return out
}
