// Package xfer executes data transfers over the simulated fabric: it splits
// data into chunks, groups chunks into batches, distributes the bytes over
// one or more link paths proportionally to path capacity, and drives the
// resulting flows through the network simulator.
//
// The chunk/batch pipeline of §4.3.1–4.3.2 is modeled at flow level: the
// per-chunk cudaMemcpyAsync launches and per-batch scheduling points are
// charged as fixed latency constants (they pipeline with the transfer, so
// only the first batch's setup is on the critical path), while preemption at
// batch boundaries is subsumed by the simulator recomputing rates at every
// flow arrival and departure — a strictly finer-grained version of the same
// mechanism.
package xfer

import (
	"time"

	"grouter/internal/fabric"
	"grouter/internal/memsim"
	"grouter/internal/netsim"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

// Transfer tuning constants (paper defaults).
const (
	// DefaultChunkBytes is the transfer chunk size (§4.3.1: 2 MB).
	DefaultChunkBytes = int64(2) << 20
	// DefaultBatchChunks is the number of chunks per batch (§4.3.2: 5).
	DefaultBatchChunks = 5

	// SetupLatency is the one-time cost of initiating a transfer (IPC handle
	// mapping, stream selection).
	SetupLatency = 30 * time.Microsecond
	// BatchLatency is the scheduling cost of the first batch; later batches
	// pipeline behind data movement.
	BatchLatency = 20 * time.Microsecond
	// HostStackLatency is the extra per-transfer cost of a host-mediated
	// network transfer (kernel TCP stack vs GPUDirect RDMA).
	HostStackLatency = 200 * time.Microsecond
)

// Path is one candidate route for a transfer.
type Path struct {
	Links []topology.LinkID
	// Bps is the path's bottleneck capacity, used for proportional byte
	// splitting across parallel paths.
	Bps float64
}

// PathOf builds a Path, deriving Bps from the network's link capacities.
func PathOf(net *netsim.Network, links []topology.LinkID) Path {
	return Path{Links: links, Bps: net.PathBps(links)}
}

// Request describes one transfer.
type Request struct {
	Label string
	Bytes int64
	Paths []Path
	// Opt carries rate-control constraints applied to every flow of the
	// transfer (min rates are split across paths proportionally).
	Opt netsim.Options
	// HostStack adds HostStackLatency (host-mediated network transfer).
	HostStack bool
	// Pinned, when non-nil, stages the transfer through a node's shared
	// circular pinned buffer: the transfer holds min(Bytes, buffer) bytes of
	// the gate for its duration.
	Pinned *memsim.ByteGate
}

// Manager executes transfers on a fabric.
type Manager struct {
	Fabric      *fabric.Fabric
	ChunkBytes  int64
	BatchChunks int
}

// NewManager returns a manager with paper-default chunking.
func NewManager(f *fabric.Fabric) *Manager {
	return &Manager{Fabric: f, ChunkBytes: DefaultChunkBytes, BatchChunks: DefaultBatchChunks}
}

// Transfer runs the request to completion from process p and returns the
// elapsed virtual time. Zero-byte transfers still pay setup latency.
func (m *Manager) Transfer(p *sim.Proc, req Request) time.Duration {
	start := p.Now()
	setup := SetupLatency + BatchLatency
	if req.HostStack {
		setup += HostStackLatency
	}
	p.Sleep(setup)

	var held int64
	if req.Pinned != nil {
		held = req.Pinned.Acquire(p, req.Bytes)
	}

	flows := m.startFlows(req)
	for _, f := range flows {
		f.Done().Wait(p)
	}

	if req.Pinned != nil && held > 0 {
		req.Pinned.Release(held)
	}
	return p.Now() - start
}

// TransferAsync starts the request from event context and returns a signal
// fired on completion. It does not model pinned-buffer backpressure (async
// callers manage their own staging).
func (m *Manager) TransferAsync(req Request) *sim.Signal {
	done := sim.NewSignal(m.Fabric.Engine)
	setup := SetupLatency + BatchLatency
	if req.HostStack {
		setup += HostStackLatency
	}
	m.Fabric.Engine.Schedule(setup, func() {
		flows := m.startFlows(req)
		if len(flows) == 0 {
			done.Fire()
			return
		}
		remaining := len(flows)
		for _, f := range flows {
			f := f
			m.Fabric.Engine.Schedule(0, func() {
				waitFlow(m.Fabric.Engine, f, func() {
					remaining--
					if remaining == 0 {
						done.Fire()
					}
				})
			})
		}
	})
	return done
}

// waitFlow invokes fn when f completes, using a watcher process only when
// the flow is not already done.
func waitFlow(e *sim.Engine, f *netsim.Flow, fn func()) {
	if f.Done().Fired() {
		fn()
		return
	}
	e.Go("flow-watch", func(p *sim.Proc) {
		f.Done().Wait(p)
		fn()
	})
}

// startFlows splits the request's bytes over its paths and launches flows.
func (m *Manager) startFlows(req Request) []*netsim.Flow {
	if len(req.Paths) == 0 {
		panic("xfer: transfer with no paths: " + req.Label)
	}
	split := SplitBytes(req.Bytes, req.Paths, m.ChunkBytes)
	var flows []*netsim.Flow
	for i, b := range split {
		if b <= 0 {
			continue
		}
		opt := req.Opt
		if opt.MinRate > 0 {
			opt.MinRate = opt.MinRate * float64(b) / float64(req.Bytes)
		}
		flows = append(flows, m.Fabric.Net.Start(req.Label, req.Paths[i].Links, float64(b), opt))
	}
	if flows == nil {
		// Entire payload rounded into path 0.
		flows = append(flows, m.Fabric.Net.Start(req.Label, req.Paths[0].Links, float64(req.Bytes), req.Opt))
	}
	return flows
}

// SplitBytes distributes bytes over paths proportionally to capacity,
// quantized to whole chunks (§4.3.3: chunk sizes scale with path capacity).
// Transfers of at most one chunk use only the fastest path.
func SplitBytes(bytes int64, paths []Path, chunk int64) []int64 {
	out := make([]int64, len(paths))
	if bytes <= 0 {
		return out
	}
	if len(paths) == 1 || bytes <= chunk {
		best := 0
		for i := 1; i < len(paths); i++ {
			if paths[i].Bps > paths[best].Bps {
				best = i
			}
		}
		out[best] = bytes
		return out
	}
	total := 0.0
	for _, p := range paths {
		total += p.Bps
	}
	if total <= 0 {
		out[0] = bytes
		return out
	}
	assigned := int64(0)
	for i, p := range paths {
		share := int64(float64(bytes) * p.Bps / total)
		share -= share % chunk
		out[i] = share
		assigned += share
	}
	// Remainder (sub-chunk residue) goes to the fastest path.
	best := 0
	for i := 1; i < len(paths); i++ {
		if paths[i].Bps > paths[best].Bps {
			best = i
		}
	}
	out[best] += bytes - assigned
	return out
}
