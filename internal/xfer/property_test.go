package xfer

import (
	"testing"
	"testing/quick"
)

// TestSplitBytesProperties checks SplitBytes invariants for arbitrary
// inputs: conservation (shares sum to the total), non-negativity, and
// chunk alignment on all but the remainder path.
func TestSplitBytesProperties(t *testing.T) {
	f := func(totalRaw uint32, capsRaw []uint16, chunkRaw uint8) bool {
		if len(capsRaw) == 0 {
			return true
		}
		if len(capsRaw) > 8 {
			capsRaw = capsRaw[:8]
		}
		bytes := int64(totalRaw)
		chunk := int64(chunkRaw)%256 + 1
		paths := make([]Path, len(capsRaw))
		for i, c := range capsRaw {
			paths[i] = Path{Bps: float64(c) + 1}
		}
		shares := SplitBytes(bytes, paths, chunk)
		if len(shares) != len(paths) {
			return false
		}
		var sum int64
		best := 0
		for i, s := range shares {
			if s < 0 {
				return false
			}
			sum += s
			if paths[i].Bps > paths[best].Bps {
				best = i
			}
		}
		if sum != bytes {
			return false
		}
		// Every non-remainder path is chunk-aligned.
		for i, s := range shares {
			if i != best && s%chunk != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestSplitBytesSubChunkRegime drives the remainder-heavy regime where
// bytes < len(paths)*chunk: most proportional shares quantize to zero and
// nearly the whole payload rides the remainder path. Conservation and
// non-negativity must still hold, and something must actually move.
func TestSplitBytesSubChunkRegime(t *testing.T) {
	f := func(bytesRaw uint16, capsRaw []uint16, chunkRaw uint16) bool {
		if len(capsRaw) < 2 {
			return true
		}
		if len(capsRaw) > 8 {
			capsRaw = capsRaw[:8]
		}
		chunk := int64(chunkRaw) + 1
		// Clamp the payload strictly below len(paths)*chunk.
		bytes := int64(bytesRaw)%(int64(len(capsRaw))*chunk) + 1
		paths := make([]Path, len(capsRaw))
		for i, c := range capsRaw {
			paths[i] = Path{Bps: float64(c) + 1}
		}
		shares := SplitBytes(bytes, paths, chunk)
		var sum int64
		positive := false
		for _, s := range shares {
			if s < 0 {
				return false
			}
			if s > 0 {
				positive = true
			}
			sum += s
		}
		return sum == bytes && positive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestSplitBytesHugePayload is the regression the share clamp fixes: above
// 2^53, float64 share arithmetic can round the dominant path's share past
// the total, which used to drive the remainder (fastest) path negative.
func TestSplitBytesHugePayload(t *testing.T) {
	cases := []struct {
		bytes int64
		paths []Path
		chunk int64
	}{
		{1<<62 + 12345, []Path{{Bps: 1e12}, {Bps: 1}}, 1},
		{1<<62 + 12345, []Path{{Bps: 1}, {Bps: 1e12}}, 1},
		{(1 << 53) + 1, []Path{{Bps: 3}, {Bps: 5}, {Bps: 7}}, 1},
		{1<<62 + 999, []Path{{Bps: 1e9}, {Bps: 1e9}, {Bps: 1}}, 4 << 20},
	}
	for _, c := range cases {
		shares := SplitBytes(c.bytes, c.paths, c.chunk)
		var sum int64
		for i, s := range shares {
			if s < 0 {
				t.Errorf("bytes=%d chunk=%d: negative share %d on path %d: %v", c.bytes, c.chunk, s, i, shares)
			}
			sum += s
		}
		if sum != c.bytes {
			t.Errorf("bytes=%d chunk=%d: shares sum to %d: %v", c.bytes, c.chunk, sum, shares)
		}
	}
}

// TestSplitBytesZeroChunk guards the degenerate chunk sizes: quantization is
// skipped rather than dividing by zero.
func TestSplitBytesZeroChunk(t *testing.T) {
	for _, chunk := range []int64{0, -8} {
		shares := SplitBytes(1000, []Path{{Bps: 1}, {Bps: 3}}, chunk)
		if shares[0]+shares[1] != 1000 || shares[0] < 0 || shares[1] < 0 {
			t.Errorf("chunk=%d: bad split %v", chunk, shares)
		}
	}
}

// TestSplitBytesMonotoneInCapacity checks that a strictly faster path never
// receives fewer bytes than a slower one (for multi-chunk transfers).
func TestSplitBytesMonotoneInCapacity(t *testing.T) {
	paths := []Path{{Bps: 100}, {Bps: 200}, {Bps: 400}}
	shares := SplitBytes(1<<30, paths, DefaultChunkBytes)
	for i := 1; i < len(shares); i++ {
		if shares[i] < shares[i-1] {
			t.Errorf("faster path got fewer bytes: %v", shares)
		}
	}
}
