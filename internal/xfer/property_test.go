package xfer

import (
	"testing"
	"testing/quick"
)

// TestSplitBytesProperties checks SplitBytes invariants for arbitrary
// inputs: conservation (shares sum to the total), non-negativity, and
// chunk alignment on all but the remainder path.
func TestSplitBytesProperties(t *testing.T) {
	f := func(totalRaw uint32, capsRaw []uint16, chunkRaw uint8) bool {
		if len(capsRaw) == 0 {
			return true
		}
		if len(capsRaw) > 8 {
			capsRaw = capsRaw[:8]
		}
		bytes := int64(totalRaw)
		chunk := int64(chunkRaw)%256 + 1
		paths := make([]Path, len(capsRaw))
		for i, c := range capsRaw {
			paths[i] = Path{Bps: float64(c) + 1}
		}
		shares := SplitBytes(bytes, paths, chunk)
		if len(shares) != len(paths) {
			return false
		}
		var sum int64
		best := 0
		for i, s := range shares {
			if s < 0 {
				return false
			}
			sum += s
			if paths[i].Bps > paths[best].Bps {
				best = i
			}
		}
		if sum != bytes {
			return false
		}
		// Every non-remainder path is chunk-aligned.
		for i, s := range shares {
			if i != best && s%chunk != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestSplitBytesMonotoneInCapacity checks that a strictly faster path never
// receives fewer bytes than a slower one (for multi-chunk transfers).
func TestSplitBytesMonotoneInCapacity(t *testing.T) {
	paths := []Path{{Bps: 100}, {Bps: 200}, {Bps: 400}}
	shares := SplitBytes(1<<30, paths, DefaultChunkBytes)
	for i := 1; i < len(shares); i++ {
		if shares[i] < shares[i-1] {
			t.Errorf("faster path got fewer bytes: %v", shares)
		}
	}
}
