package xfer

import (
	"errors"
	"testing"
	"time"

	"grouter/internal/metrics"
	"grouter/internal/netsim"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

func TestRequestValidationTypedErrors(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := v100Fabric(e, 1)
	m := NewManager(f)
	n := f.Topo(0)
	path := PathOf(f.Net, n.NVLinkPathLinks([]int{0, 1}))
	e.Go("t", func(p *sim.Proc) {
		if _, err := m.Transfer(p, Request{Label: "empty", Bytes: MB}); !errors.Is(err, ErrNoPaths) {
			t.Errorf("no paths: err = %v, want ErrNoPaths", err)
		}
		if _, err := m.Transfer(p, Request{Label: "zero", Paths: []Path{path}}); !errors.Is(err, ErrZeroBytes) {
			t.Errorf("zero bytes: err = %v, want ErrZeroBytes", err)
		}
		if _, err := m.Transfer(p, Request{Label: "neg", Bytes: -5, Paths: []Path{path}}); !errors.Is(err, ErrZeroBytes) {
			t.Errorf("negative bytes: err = %v, want ErrZeroBytes", err)
		}
	})
	e.Run(0)
	if f.Net.ActiveFlows() != 0 {
		t.Errorf("invalid requests left %d flows", f.Net.ActiveFlows())
	}
}

func TestTransferAsyncPanicsOnInvalidRequest(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	m := NewManager(v100Fabric(e, 1))
	defer func() {
		if recover() == nil {
			t.Error("TransferAsync accepted a request with no paths")
		}
	}()
	m.TransferAsync(Request{Label: "bad", Bytes: MB})
}

// TestRetryAfterLinkFlap kills the transfer's only path mid-flight and
// restores it shortly after: the retry loop must back off, re-send only the
// undelivered bytes, and complete — slower than fault-free, but complete.
func TestRetryAfterLinkFlap(t *testing.T) {
	metrics.Faults().Reset()
	e := sim.NewEngine()
	defer e.Close()
	f := v100Fabric(e, 1)
	m := NewManager(f)
	n := f.Topo(0)
	link := n.NVLinkTo(0, 3)
	var elapsed time.Duration
	var err error
	e.Go("t", func(p *sim.Proc) {
		// ~1 ms fault-free (48 MB at 48 GB/s).
		elapsed, err = m.Transfer(p, Request{
			Label: "flap",
			Bytes: 48 * MB,
			Paths: []Path{PathOf(f.Net, n.NVLinkPathLinks([]int{0, 3}))},
		})
	})
	e.Go("fault", func(p *sim.Proc) {
		p.Sleep(500 * time.Microsecond)
		f.Net.FailLink(link)
		p.Sleep(200 * time.Microsecond)
		f.Net.RestoreLink(link)
	})
	e.Run(0)
	if err != nil {
		t.Fatalf("transfer did not survive the flap: %v", err)
	}
	faultFree := time.Duration(float64(48*MB)/topology.GBps(48)*float64(time.Second)) +
		SetupLatency + BatchLatency
	if elapsed <= faultFree {
		t.Errorf("flapped transfer took %v, expected more than fault-free %v", elapsed, faultFree)
	}
	fs := metrics.Faults()
	if fs.Retries.Load() == 0 {
		t.Error("no retry recorded for a mid-flight kill")
	}
	if fs.FlowsKilled.Load() == 0 {
		t.Error("no flow kill recorded")
	}
	if fs.DegradedBytes.Load() == 0 {
		t.Error("completion on a retry attempt recorded no degraded bytes")
	}
	if fs.TransfersFailed.Load() != 0 {
		t.Errorf("transfers-failed = %d, want 0", fs.TransfersFailed.Load())
	}
}

// TestReplanFallsBackToPCIe fails the NVLink permanently: the retry loop must
// consult Replan and finish the residue over the PCIe fallback path.
func TestReplanFallsBackToPCIe(t *testing.T) {
	metrics.Faults().Reset()
	e := sim.NewEngine()
	defer e.Close()
	f := v100Fabric(e, 1)
	m := NewManager(f)
	n := f.Topo(0)
	link := n.NVLinkTo(0, 3)
	var err error
	replanned := 0
	e.Go("t", func(p *sim.Proc) {
		_, err = m.Transfer(p, Request{
			Label: "replan",
			Bytes: 48 * MB,
			Paths: []Path{PathOf(f.Net, n.NVLinkPathLinks([]int{0, 3}))},
			Replan: func(attempt int) []Path {
				replanned++
				return []Path{PathOf(f.Net, n.PCIeP2PLinks(0, 3))}
			},
		})
	})
	e.Go("fault", func(p *sim.Proc) {
		p.Sleep(500 * time.Microsecond)
		f.Net.FailLink(link) // permanent: only the re-plan can finish this
	})
	e.Run(0)
	if err != nil {
		t.Fatalf("transfer did not recover over the fallback: %v", err)
	}
	if replanned == 0 {
		t.Fatal("Replan was never consulted")
	}
	fs := metrics.Faults()
	if fs.Replans.Load() == 0 {
		t.Error("no replan recorded")
	}
	if fs.Retries.Load() == 0 {
		t.Error("no retry recorded")
	}
}

// TestAllPathsDownExhaustsRetries keeps the only path dead with no Replan:
// the transfer must give up with ErrPathsDown after MaxAttempts backoffs.
func TestAllPathsDownExhaustsRetries(t *testing.T) {
	metrics.Faults().Reset()
	e := sim.NewEngine()
	defer e.Close()
	f := v100Fabric(e, 1)
	m := NewManager(f)
	n := f.Topo(0)
	var err error
	e.Go("t", func(p *sim.Proc) {
		f.Net.FailLink(n.NVLinkTo(0, 3))
		_, err = m.Transfer(p, Request{
			Label: "doomed",
			Bytes: MB,
			Paths: []Path{PathOf(f.Net, n.NVLinkPathLinks([]int{0, 3}))},
			Retry: RetryPolicy{MaxAttempts: 3},
		})
	})
	e.Run(0)
	if !errors.Is(err, ErrPathsDown) {
		t.Fatalf("err = %v, want ErrPathsDown", err)
	}
	fs := metrics.Faults()
	if got := fs.Retries.Load(); got != 2 {
		t.Errorf("retries = %d, want 2 (attempts 2 and 3)", got)
	}
	if fs.TransfersFailed.Load() != 1 {
		t.Errorf("transfers-failed = %d, want 1", fs.TransfersFailed.Load())
	}
}

// TestDeadlineCancelsFlows gives a large transfer a deadline far shorter than
// its fault-free duration: Transfer must return ErrDeadline at the deadline
// instant with every in-flight flow canceled.
func TestDeadlineCancelsFlows(t *testing.T) {
	metrics.Faults().Reset()
	e := sim.NewEngine()
	defer e.Close()
	f := v100Fabric(e, 1)
	m := NewManager(f)
	n := f.Topo(0)
	var elapsed time.Duration
	var err error
	e.Go("t", func(p *sim.Proc) {
		// ~10 ms fault-free; deadline at 2 ms.
		elapsed, err = m.Transfer(p, Request{
			Label:    "late",
			Bytes:    480 * MB,
			Paths:    []Path{PathOf(f.Net, n.NVLinkPathLinks([]int{0, 3}))},
			Deadline: 2 * time.Millisecond,
		})
	})
	e.Run(0)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	approxDur(t, elapsed, 2*time.Millisecond, 0.01, "gave up at the deadline")
	if f.Net.ActiveFlows() != 0 {
		t.Errorf("%d flows still active after deadline cancel", f.Net.ActiveFlows())
	}
	if metrics.Faults().TransfersFailed.Load() != 1 {
		t.Errorf("transfers-failed = %d, want 1", metrics.Faults().TransfersFailed.Load())
	}
}

// TestBackoffDeterministic pins the exponential schedule: base, 2x, 4x, …,
// capped — and no jitter, so chaos scenarios replay bit-identically.
func TestBackoffDeterministic(t *testing.T) {
	pol := RetryPolicy{BackoffBase: 100 * time.Microsecond, BackoffCap: 500 * time.Microsecond}.withDefaults()
	want := []time.Duration{100 * time.Microsecond, 200 * time.Microsecond,
		400 * time.Microsecond, 500 * time.Microsecond, 500 * time.Microsecond}
	for i, w := range want {
		if got := pol.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// TestRetryPreservesMinRateScaling checks that a retry re-sending a residue
// scales its MinRate reservation down proportionally instead of demanding the
// full-payload floor for a fraction of the bytes.
func TestRetryPreservesMinRateScaling(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := v100Fabric(e, 1)
	m := NewManager(f)
	flows := m.startFlows("resend", 12*MB, []Path{PathOf(f.Net, f.Topo(0).NVLinkPathLinks([]int{0, 1}))},
		netsim.Options{MinRate: topology.GBps(24)}, 48*MB)
	if len(flows) != 1 {
		t.Fatalf("got %d flows", len(flows))
	}
	// A quarter of the payload keeps a quarter of the reservation: 6 GB/s of
	// the 24 GB/s link, leaving room for the peers the floor was sized against.
	if got, want := flows[0].Rate(), topology.GBps(24); got > want {
		t.Errorf("residual flow rate %f exceeds link capacity %f", got, want)
	}
	e.Run(0)
}
