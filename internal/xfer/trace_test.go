package xfer

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"grouter/internal/obs"
	"grouter/internal/sim"
)

// TestTracedTransferRetryAndReplan kills the NVLink path mid-transfer with a
// tracer attached: the transfer must retry, re-plan onto PCIe, and finish,
// and the export must contain the transfer span with its byte count plus the
// retry and replan instants.
func TestTracedTransferRetryAndReplan(t *testing.T) {
	e := sim.NewEngine()
	tr := obs.Attach(e)
	f := v100Fabric(e, 1)
	m := NewManager(f)
	n := f.Topo(0)
	direct := PathOf(f.Net, n.NVLinkPathLinks([]int{0, 3}))
	pcie := PathOf(f.Net, n.PCIeP2PLinks(0, 3))
	// ~1ms transfer at 48 GB/s; the outage lands inside it.
	e.Schedule(500*time.Microsecond, func() {
		for _, id := range direct.Links {
			f.Net.FailLink(id)
		}
	})
	var err error
	e.Go("t", func(p *sim.Proc) {
		_, err = m.Transfer(p, Request{
			Label:  "retry-me",
			Bytes:  48 * MB,
			Paths:  []Path{direct},
			Track:  obs.ReqTrack(7),
			Replan: func(attempt int) []Path { return []Path{pcie} },
		})
	})
	e.Run(0)
	if err != nil {
		t.Fatalf("transfer did not survive the outage: %v", err)
	}
	var buf bytes.Buffer
	if exportErr := tr.Export(&buf); exportErr != nil {
		t.Fatalf("export: %v", exportErr)
	}
	out := buf.String()
	for _, want := range []string{
		`"name":"retry-me"`, `"cat":"transfer"`,
		`"name":"retry"`, `"attempt":1`,
		`"name":"replan"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s", want)
		}
	}
	e.Close()
}
