package xfer

import (
	"math"
	"testing"
	"time"

	"grouter/internal/fabric"
	"grouter/internal/netsim"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

const MB = int64(1) << 20

func v100Fabric(e *sim.Engine, nodes int) *fabric.Fabric {
	return fabric.New(e, topology.DGXV100(), nodes)
}

func approxDur(t *testing.T, got, want time.Duration, tol float64, msg string) {
	t.Helper()
	g, w := got.Seconds(), want.Seconds()
	if math.Abs(g-w) > tol*w {
		t.Errorf("%s: got %v, want %v (±%.0f%%)", msg, got, want, tol*100)
	}
}

func TestSplitBytesProportional(t *testing.T) {
	paths := []Path{{Bps: 100}, {Bps: 300}}
	got := SplitBytes(400*MB, paths, 2*MB)
	if got[0]+got[1] != 400*MB {
		t.Fatalf("split loses bytes: %v", got)
	}
	// Path 1 should get ~3x path 0.
	ratio := float64(got[1]) / float64(got[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("split ratio = %.2f, want ~3", ratio)
	}
	// Chunk alignment on the non-remainder path.
	if got[0]%(2*MB) != 0 {
		t.Errorf("path 0 share %d not chunk aligned", got[0])
	}
}

func TestSplitBytesSmallUsesFastestOnly(t *testing.T) {
	paths := []Path{{Bps: 100}, {Bps: 300}}
	got := SplitBytes(MB, paths, 2*MB)
	if got[0] != 0 || got[1] != MB {
		t.Errorf("small transfer split = %v, want all on fastest", got)
	}
}

func TestSplitBytesZero(t *testing.T) {
	got := SplitBytes(0, []Path{{Bps: 1}}, 2*MB)
	if got[0] != 0 {
		t.Errorf("zero split = %v", got)
	}
}

func TestSinglePathTransferLatency(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := v100Fabric(e, 1)
	m := NewManager(f)
	n := f.Topo(0)
	var elapsed time.Duration
	e.Go("t", func(p *sim.Proc) {
		// 48 MB over the 0→3 double NVLink (48 GB/s) ≈ 1 ms.
		elapsed, _ = m.Transfer(p, Request{
			Label: "t",
			Bytes: 48 * MB,
			Paths: []Path{PathOf(f.Net, n.NVLinkPathLinks([]int{0, 3}))},
		})
	})
	e.Run(0)
	want := time.Duration(float64(48*MB) / topology.GBps(48) * float64(time.Second))
	approxDur(t, elapsed, want+SetupLatency+BatchLatency, 0.05, "48MB over NVLink 0→3")
}

func TestParallelPathsAggregateBandwidth(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := v100Fabric(e, 1)
	m := NewManager(f)
	n := f.Topo(0)
	direct := PathOf(f.Net, n.NVLinkPathLinks([]int{0, 3}))      // 48 GB/s
	indirect := PathOf(f.Net, n.NVLinkPathLinks([]int{0, 1, 3})) // 24 GB/s
	var one, both time.Duration
	e.Go("single", func(p *sim.Proc) {
		one, _ = m.Transfer(p, Request{Label: "s", Bytes: 288 * MB, Paths: []Path{direct}})
		both, _ = m.Transfer(p, Request{Label: "d", Bytes: 288 * MB, Paths: []Path{direct, indirect}})
	})
	e.Run(0)
	// Two paths at 48+24 = 72 GB/s vs 48 GB/s: ~1.5x speedup.
	speedup := one.Seconds() / both.Seconds()
	if speedup < 1.3 || speedup > 1.6 {
		t.Errorf("multi-path speedup = %.2f, want ~1.5 (one=%v both=%v)", speedup, one, both)
	}
}

func TestHostStackAddsLatency(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := v100Fabric(e, 2)
	m := NewManager(f)
	tx := f.Topo(0).NICTx(0)
	rx := f.Topo(1).NICRx(0)
	var plain, stack time.Duration
	e.Go("t", func(p *sim.Proc) {
		plain, _ = m.Transfer(p, Request{Label: "p", Bytes: MB, Paths: []Path{PathOf(f.Net, []topology.LinkID{tx, rx})}})
		stack, _ = m.Transfer(p, Request{Label: "s", Bytes: MB, Paths: []Path{PathOf(f.Net, []topology.LinkID{tx, rx})}, HostStack: true})
	})
	e.Run(0)
	if d := stack - plain; d < HostStackLatency*9/10 || d > HostStackLatency*11/10 {
		t.Errorf("host stack delta = %v, want ~%v", d, HostStackLatency)
	}
}

func TestPinnedGateSerializesHugeTransfers(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := v100Fabric(e, 1)
	m := NewManager(f)
	n := f.Topo(0)
	gate := f.NodeF(0).Pinned
	var d1, d2 time.Duration
	mk := func(label string, out *time.Duration) {
		e.Go(label, func(p *sim.Proc) {
			m.Transfer(p, Request{
				Label:  label,
				Bytes:  fabric.DefaultPinnedBufferBytes, // fills the gate
				Paths:  []Path{PathOf(f.Net, n.GPUToHostLinks(0))},
				Pinned: gate,
			})
			*out = p.Now()
		})
	}
	mk("first", &d1)
	mk("second", &d2)
	e.Run(0)
	if !(d2 > d1) {
		t.Errorf("second gated transfer finished at %v, not after first at %v", d2, d1)
	}
}

func TestTransferAsyncFiresOnce(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := v100Fabric(e, 1)
	m := NewManager(f)
	n := f.Topo(0)
	done := m.TransferAsync(Request{
		Label: "async",
		Bytes: 24 * MB,
		Paths: []Path{PathOf(f.Net, n.NVLinkPathLinks([]int{0, 1}))},
	})
	var at time.Duration
	e.Go("w", func(p *sim.Proc) {
		done.Wait(p)
		at = p.Now()
	})
	e.Run(0)
	want := time.Duration(float64(24*MB)/topology.GBps(24)*float64(time.Second)) + SetupLatency + BatchLatency
	approxDur(t, at, want, 0.05, "async transfer completion")
}

func TestRateControlledTransferMeetsFloor(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := v100Fabric(e, 1)
	m := NewManager(f)
	n := f.Topo(0)
	hostPath := PathOf(f.Net, n.GPUToHostLinks(0)) // 12 GB/s PCIe
	// Background hog without reservation.
	e.Go("hog", func(p *sim.Proc) {
		m.Transfer(p, Request{Label: "hog", Bytes: 1200 * MB, Paths: []Path{hostPath}})
	})
	var controlled time.Duration
	e.Go("slo", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		start := p.Now()
		m.Transfer(p, Request{
			Label: "slo",
			Bytes: 120 * MB,
			Paths: []Path{hostPath},
			Opt:   netsim.Options{MinRate: topology.GBps(9), Priority: 1},
		})
		controlled = p.Now() - start
	})
	e.Run(0)
	// With ≥9 GB/s guaranteed, 120 MB takes ≤ ~14 ms. Without the
	// reservation fair sharing would give 6 GB/s → ~20 ms.
	if controlled > 15*time.Millisecond {
		t.Errorf("SLO transfer took %v, want < 15ms with reservation", controlled)
	}
}
