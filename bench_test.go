package grouter

// Benchmark harness: one testing.B benchmark per table and figure in the
// paper's evaluation, each running the corresponding experiment end to end,
// plus micro-benchmarks of the simulation substrate itself. Run with
//
//	go test -bench=. -benchmem
//
// Every experiment is deterministic; the wall-clock numbers measure the
// simulator, while the simulated results (what the paper reports) are
// printed by cmd/grouter-bench.

import (
	"testing"
	"time"

	"grouter/internal/experiments"
	"grouter/internal/fabric"
	"grouter/internal/netsim"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
)

// benchExperiment runs one paper experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e := experiments.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := e.Run()
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig3Breakdown(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFig5bInterference(b *testing.B)  { benchExperiment(b, "fig5b") }
func BenchmarkFig6aPairBandwidth(b *testing.B) { benchExperiment(b, "fig6a") }
func BenchmarkFig7aMemoryTimeline(b *testing.B) {
	benchExperiment(b, "fig7a")
}
func BenchmarkTable1Capabilities(b *testing.B)  { benchExperiment(b, "tab1") }
func BenchmarkFig13DataPassing(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFig14EndToEnd(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkFig15Throughput(b *testing.B)     { benchExperiment(b, "fig15") }
func BenchmarkFig16Ablation(b *testing.B)       { benchExperiment(b, "fig16") }
func BenchmarkFig17Partitioning(b *testing.B)   { benchExperiment(b, "fig17") }
func BenchmarkFig18ElasticStorage(b *testing.B) { benchExperiment(b, "fig18") }
func BenchmarkFig19LLMTTFT(b *testing.B)        { benchExperiment(b, "fig19") }
func BenchmarkFig20aNoNVLink(b *testing.B)      { benchExperiment(b, "fig20a") }
func BenchmarkFig20bCPUOverhead(b *testing.B)   { benchExperiment(b, "fig20b") }
func BenchmarkFig20cMemoryOverhead(b *testing.B) {
	benchExperiment(b, "fig20c")
}
func BenchmarkExtColdStart(b *testing.B)      { benchExperiment(b, "ext-coldstart") }
func BenchmarkExtSpatialSharing(b *testing.B) { benchExperiment(b, "ext-spatial") }

// --- substrate micro-benchmarks ---

// BenchmarkEngineEvents measures raw event throughput of the discrete-event
// engine.
func BenchmarkEngineEvents(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	defer e.Close()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(time.Microsecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run(0)
	if n != b.N && b.N > 0 {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// BenchmarkProcessSwitch measures cooperative process context switches.
func BenchmarkProcessSwitch(b *testing.B) {
	e := sim.NewEngine()
	defer e.Close()
	e.Go("switcher", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	e.Run(0)
}

// BenchmarkNetsimFlowChurn measures rate recomputation under concurrent
// flows on a realistic link graph.
func BenchmarkNetsimFlowChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		cl := topology.NewCluster(topology.DGXV100(), 1)
		net := netsim.New(e, cl.Links())
		node := cl.Node(0)
		for g := 0; g < 8; g++ {
			for peer := 0; peer < 8; peer++ {
				if node.Spec.NVAdj[g][peer] > 0 {
					net.Start("churn", node.NVLinkPathLinks([]int{g, peer}), 1<<24, netsim.Options{})
				}
			}
		}
		e.Run(0)
		e.Close()
	}
}

// netsimScaleSpecs builds the flow mix for the netsim scale benchmarks: a
// 4-node DGX-A100 cluster with NVSwitch pair traffic, PCIe host staging, and
// cross-node NIC transfers on every GPU, replicated until well over a
// thousand flows are in flight.
type netsimFlowSpec struct {
	path  []topology.LinkID
	bytes float64
	delay time.Duration
}

func netsimScaleSpecs(cl *topology.Cluster, replicas int) []netsimFlowSpec {
	var specs []netsimFlowSpec
	nodes := len(cl.Nodes)
	for rep := 0; rep < replicas; rep++ {
		for nd := 0; nd < nodes; nd++ {
			node := cl.Node(nd)
			dst := cl.Node((nd + 1) % nodes)
			for g := 0; g < node.Spec.NumGPUs; g++ {
				base := time.Duration(rep*nodes*8+nd*8+g) * 23 * time.Microsecond
				for r := 1; r <= 4; r++ {
					peer := (g + r) % node.Spec.NumGPUs
					specs = append(specs, netsimFlowSpec{
						path:  node.NVLinkPathLinks([]int{g, peer}),
						bytes: float64(int64(32+(g*7+r*3+rep)%32) << 20),
						delay: base + time.Duration(r)*17*time.Microsecond,
					})
				}
				specs = append(specs, netsimFlowSpec{
					path:  node.GPUToHostLinks(g),
					bytes: float64(int64(24+(g+rep)%16) << 20),
					delay: base + 97*time.Microsecond,
				})
				specs = append(specs, netsimFlowSpec{
					path:  node.HostToGPULinks(g),
					bytes: float64(int64(24+(g+rep)%16) << 20),
					delay: base + 131*time.Microsecond,
				})
				k := node.Spec.GPUNIC[g]
				xpath := append(append([]topology.LinkID{}, node.GPUToNICLinks(g, k)...), dst.NICToGPULinks(k, g)...)
				specs = append(specs, netsimFlowSpec{
					path:  xpath,
					bytes: float64(int64(16+(g*5+rep)%16) << 20),
					delay: base + 173*time.Microsecond,
				})
			}
		}
	}
	return specs
}

// BenchmarkNetsimScale1k runs ~1,500 concurrent flows over a 4-node DGX-A100
// cluster topology: every flow arrival and completion triggers a rate
// recomputation, so this measures the allocator's scaling behaviour.
func BenchmarkNetsimScale1k(b *testing.B) {
	b.ReportAllocs()
	cl := topology.NewCluster(topology.DGXA100(), 4)
	links := cl.Links()
	specs := netsimScaleSpecs(cl, 7) // 4 nodes x 8 GPUs x 7 flows x 7 replicas = 1568
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		net := netsim.New(e, links)
		for _, s := range specs {
			s := s
			e.Schedule(s.delay, func() {
				net.Start("scale", s.path, s.bytes, netsim.Options{})
			})
		}
		e.Run(0)
		e.Close()
		if net.ActiveFlows() != 0 {
			b.Fatalf("flows left: %d", net.ActiveFlows())
		}
	}
}

// BenchmarkNetsimScaleComponents measures multi-component contention: long
// background flows occupy the NVSwitch fabrics of nodes 1-3 while node 0
// sees heavy arrival churn. A component-scoped allocator only recomputes the
// busy island; a global one pays for every idle flow on every event.
func BenchmarkNetsimScaleComponents(b *testing.B) {
	b.ReportAllocs()
	cl := topology.NewCluster(topology.DGXA100(), 4)
	links := cl.Links()
	node0 := cl.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		net := netsim.New(e, links)
		// Long-lived background flows on nodes 1-3 (disjoint NVSwitch islands).
		for nd := 1; nd < 4; nd++ {
			node := cl.Node(nd)
			for g := 0; g < 8; g++ {
				net.Start("bg", node.NVLinkPathLinks([]int{g, (g + 1) % 8}), 64<<30, netsim.Options{})
			}
		}
		// Churn: 600 short flows arriving on node 0 over time.
		for j := 0; j < 600; j++ {
			j := j
			e.Schedule(time.Duration(j)*50*time.Microsecond, func() {
				g := j % 8
				net.Start("churn", node0.NVLinkPathLinks([]int{g, (g + 1 + j%7) % 8}), float64(int64(4+j%8)<<20), netsim.Options{})
			})
		}
		e.Run(40 * time.Millisecond)
		e.Close()
	}
}

// BenchmarkDataPassing measures one simulated Put/Get exchange per iteration
// through the full GROUTER stack.
func BenchmarkDataPassing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := MustNewSim("dgx-v100")
		pl := s.NewGRouter(FullConfig())
		s.Go("pass", func(p *Proc) {
			up := &FnCtx{Fn: "up", Loc: Location{Node: 0, GPU: 0}}
			down := &FnCtx{Fn: "down", Loc: Location{Node: 0, GPU: 3}}
			ref, err := pl.Put(p, up, 64<<20)
			if err != nil {
				panic(err)
			}
			if err := pl.Get(p, down, ref); err != nil {
				panic(err)
			}
			pl.Free(ref)
		})
		s.Run()
		s.Close()
	}
}

// BenchmarkTraceGeneration measures Azure-like trace synthesis.
func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		arr := trace.Generate(trace.Spec{
			Pattern: trace.Bursty, Duration: time.Minute, MeanRPS: 50, Seed: int64(i),
		})
		if len(arr) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkFabricConstruction measures building a two-node simulated
// cluster.
func BenchmarkFabricConstruction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		f := fabric.New(e, topology.DGXV100(), 2)
		if f.NumNodes() != 2 {
			b.Fatal("bad fabric")
		}
		e.Close()
	}
}
