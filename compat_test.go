package grouter

// Compatibility tests for the deprecated façade shims. Deliberate deprecated
// calls live here (same package as the shims, so staticcheck's SA1019 does
// not fire); the repo-root deprecation scan allowlists this file.

import (
	"reflect"
	"testing"
	"time"
)

func TestFacadeDeprecatedShims(t *testing.T) {
	s, err := NewSimN("dgx-v100", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Fabric.NumNodes() != 2 {
		t.Errorf("NewSimN nodes = %d, want 2", s.Fabric.NumNodes())
	}
	s2 := MustNewSimN("dgx-v100", 1)
	defer s2.Close()
}

// TestFacadeInvokeShimByteIdentical pins the old Invoke/InvokeQoS paths to
// the typed Submit path through the façade: the same trace driven both ways
// must produce identical completion counts and latency samples.
func TestFacadeInvokeShimByteIdentical(t *testing.T) {
	drive := func(submit func(app *App, i int)) (int, []time.Duration) {
		s := MustNewSim("dgx-v100")
		defer s.Close()
		c := s.NewCluster(func(s *Sim) Plane { return s.NewGRouter() })
		app := c.Deploy(TrafficWorkflow(), 0, PlaceOptions{Node: 0})
		arrivals := GenerateTrace(TraceSpec{Pattern: Bursty, Duration: 2 * time.Second, MeanRPS: 20, Seed: 5})
		for i, at := range arrivals {
			i := i
			s.Schedule(at, func() { submit(app, i) })
		}
		s.Run()
		return app.Completed, app.E2E.Samples()
	}
	qosOf := func(i int) QoS {
		if i%5 == 0 {
			return QoSHigh
		}
		return QoSLow
	}
	oldN, oldS := drive(func(app *App, i int) { app.InvokeQoS(qosOf(i)) })
	newN, newS := drive(func(app *App, i int) { app.Submit(NewRequest(ReqQoS(qosOf(i)))) })
	if oldN != newN || !reflect.DeepEqual(oldS, newS) {
		t.Errorf("façade shim diverged: old %d requests, new %d, samples equal=%v",
			oldN, newN, reflect.DeepEqual(oldS, newS))
	}
	if oldN == 0 {
		t.Fatal("no requests completed")
	}
}
