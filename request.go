package grouter

import "grouter/internal/cluster"

// Typed request submission. Request is the single submission path through
// façade, cluster, and router: build one with NewRequest and hand it to
// App.Submit or, for LLM serving, LLMService.Submit. The deprecated
// App.Invoke / App.InvokeQoS entry points remain byte-compatible shims over
// it.
type (
	// Request is the typed descriptor of one submitted request (batch, QoS,
	// prompt/output lengths, session, PD placement mode, model).
	Request = cluster.Request
	// ReplaySpec configures App.Replay, the typed-request trace replay:
	// batched admission quantum plus a per-arrival Request constructor.
	ReplaySpec = cluster.ReplaySpec
	// PDMode selects how an LLM request's prefill and decode phases are
	// placed (see PDAuto/PDColocated/PDDisaggregated).
	PDMode = cluster.PDMode
)

// Prefill/decode placement modes for Request.PD.
const (
	// PDAuto lets the routing policy pick per request (the default).
	PDAuto = cluster.PDAuto
	// PDColocated runs both phases back to back on one GPU.
	PDColocated = cluster.PDColocated
	// PDDisaggregated splits the phases across prefill/decode workers with a
	// KV-cache handoff over the data plane.
	PDDisaggregated = cluster.PDDisaggregated
)

// RequestOption customizes one field of a Request built by NewRequest.
type RequestOption func(*Request)

// NewRequest builds a typed request descriptor. With no options it is the
// zero-value default request: the app's deployed batch size, QoSLow, service
// default prompt/output lengths, no session, PDAuto placement.
func NewRequest(opts ...RequestOption) Request {
	var r Request
	for _, o := range opts {
		o(&r)
	}
	return r
}

// ReqBatch overrides the app's deployed batch size for this request.
func ReqBatch(n int) RequestOption { return func(r *Request) { r.Batch = n } }

// ReqQoS sets the request's priority class.
func ReqQoS(q QoS) RequestOption { return func(r *Request) { r.QoS = q } }

// ReqPrompt sets the LLM prompt length in tokens (drives prefill time,
// KV-cache size, and the PD long-prompt split).
func ReqPrompt(tokens int) RequestOption {
	return func(r *Request) { r.PromptTokens = tokens }
}

// ReqOutput sets the LLM output length in decode tokens.
func ReqOutput(tokens int) RequestOption {
	return func(r *Request) { r.OutTokens = tokens }
}

// ReqSession tags the request with a conversation session; the PD routing
// policy pins a session's decode phases to one worker.
func ReqSession(id int64) RequestOption {
	return func(r *Request) { r.Session = id }
}

// ReqPD forces the prefill/decode placement mode instead of PDAuto.
func ReqPD(m PDMode) RequestOption { return func(r *Request) { r.PD = m } }

// ReqModel names the target LLM for model-checked services.
func ReqModel(name string) RequestOption {
	return func(r *Request) { r.Model = name }
}
