package grouter

import (
	"testing"
	"time"
)

func TestNewSimValidatesSpec(t *testing.T) {
	if _, err := NewSim("not-a-box"); err == nil {
		t.Error("unknown topology should error")
	}
	if _, err := NewSim("dgx-v100", WithNodes(0)); err == nil {
		t.Error("zero nodes should error")
	}
	s, err := NewSim("dgx-a100", WithNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Fabric.NumNodes() != 2 {
		t.Errorf("nodes = %d", s.Fabric.NumNodes())
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewSim should panic on bad spec")
		}
	}()
	MustNewSim("nope")
}

func TestFacadeEndToEnd(t *testing.T) {
	s := MustNewSim("dgx-v100")
	defer s.Close()
	pl := s.NewGRouter(FullConfig())
	var elapsed time.Duration
	s.Go("exchange", func(p *Proc) {
		up := &FnCtx{Fn: "up", Workflow: "facade", Loc: Location{Node: 0, GPU: 0}}
		down := &FnCtx{Fn: "down", Workflow: "facade", Loc: Location{Node: 0, GPU: 4}}
		start := p.Now()
		ref, err := pl.Put(p, up, 32<<20)
		if err != nil {
			t.Errorf("Put: %v", err)
			return
		}
		if err := pl.Get(p, down, ref); err != nil {
			t.Errorf("Get: %v", err)
			return
		}
		pl.Free(ref)
		elapsed = p.Now() - start
	})
	s.Run()
	if elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if pl.Stats().Copies != 1 {
		t.Errorf("copies = %d, want 1", pl.Stats().Copies)
	}
}

func TestFacadeBaselines(t *testing.T) {
	s := MustNewSim("dgx-v100")
	defer s.Close()
	for _, pl := range []Plane{s.NewINFless(), s.NewNVShmem(3), s.NewDeepPlan(3)} {
		pl := pl
		s.Go("exchange-"+pl.Name(), func(p *Proc) {
			up := &FnCtx{Fn: "up", Loc: Location{Node: 0, GPU: 1}}
			down := &FnCtx{Fn: "down", Loc: Location{Node: 0, GPU: 6}}
			ref, err := pl.Put(p, up, 8<<20)
			if err != nil {
				t.Errorf("%s Put: %v", pl.Name(), err)
				return
			}
			if err := pl.Get(p, down, ref); err != nil {
				t.Errorf("%s Get: %v", pl.Name(), err)
			}
			pl.Free(ref)
		})
	}
	s.Run()
}

func TestHostLocation(t *testing.T) {
	host := Location{Node: 0, GPU: HostGPU}
	if !host.IsHost() {
		t.Error("HostGPU constant does not mark host memory")
	}
}
