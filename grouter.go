// Package grouter is a GPU-centric data plane for serverless inference
// workflows, reproducing "Efficient Data Passing for Serverless Inference
// Workflows: A GPU-Centric Approach" (EuroSys 2026) on a simulated GPU
// cluster substrate.
//
// The package is a convenience façade over the library's subsystems:
//
//   - grouter.NewSim builds a deterministic simulated cluster (DGX-V100,
//     DGX-A100, 8×H800 or 4×A10 nodes);
//   - Sim.NewGRouter / NewINFless / NewNVShmem / NewDeepPlan construct the
//     data planes, all implementing the same Plane interface (Put/Get/Free);
//   - Sim.NewCluster wires a data plane into a serverless runtime that
//     deploys workflow DAGs and executes requests.
//
// See examples/quickstart for the shortest end-to-end program and
// cmd/grouter-bench for the paper-reproduction experiments.
package grouter

import (
	"fmt"

	"grouter/internal/baselines"
	"grouter/internal/cluster"
	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

// Re-exported core types: the façade lets downstream code use the library
// without spelling internal import paths.
type (
	// Plane is a serverless data plane (GROUTER or a baseline).
	Plane = dataplane.Plane
	// FnCtx identifies the calling function instance to the data plane.
	FnCtx = dataplane.FnCtx
	// DataRef names a stored intermediate-data object.
	DataRef = dataplane.DataRef
	// Location is a physical placement (node + GPU, or host memory).
	Location = fabric.Location
	// Config toggles GROUTER's optimizations (all enabled by default).
	Config = core.Config
	// Proc is a cooperative simulation process.
	Proc = sim.Proc
)

// HostGPU marks host memory in a Location.
const HostGPU = fabric.HostGPU

// FullConfig returns the complete GROUTER system configuration.
func FullConfig() Config { return core.FullConfig() }

// Sim is one deterministic simulation universe: an engine plus a cluster
// fabric. Every Sim is independent; identical inputs produce identical
// results.
type Sim struct {
	Engine *sim.Engine
	Fabric *fabric.Fabric
}

// NewSim builds a simulation of n nodes of the named topology: "dgx-v100",
// "dgx-a100", "h800x8", or "quad-a10".
func NewSim(spec string, n int) (*Sim, error) {
	s := topology.SpecByName(spec)
	if s == nil {
		return nil, fmt.Errorf("grouter: unknown topology %q", spec)
	}
	e := sim.NewEngine()
	return &Sim{Engine: e, Fabric: fabric.New(e, s, n)}, nil
}

// MustNewSim is NewSim for tests and examples; it panics on a bad name.
func MustNewSim(spec string, n int) *Sim {
	s, err := NewSim(spec, n)
	if err != nil {
		panic(err)
	}
	return s
}

// Close terminates the simulation and its background processes.
func (s *Sim) Close() { s.Engine.Close() }

// Run executes the simulation until all non-daemon activity completes.
func (s *Sim) Run() { s.Engine.Run(0) }

// Go spawns a simulation process.
func (s *Sim) Go(name string, body func(p *Proc)) { s.Engine.Go(name, body) }

// NewGRouter builds the GPU-centric data plane on this simulation.
func (s *Sim) NewGRouter(cfg Config) Plane { return core.New(s.Fabric, cfg) }

// NewINFless builds the host-centric baseline.
func (s *Sim) NewINFless() Plane { return baselines.NewINFless(s.Fabric) }

// NewNVShmem builds the placement-agnostic GPU-store baseline.
func (s *Sim) NewNVShmem(seed int64) Plane { return baselines.NewNVShmem(s.Fabric, seed) }

// NewDeepPlan builds the parallel-PCIe GPU-store baseline.
func (s *Sim) NewDeepPlan(seed int64) Plane { return baselines.NewDeepPlan(s.Fabric, seed) }

// Runtime re-exports the serverless cluster runtime.
type Runtime = cluster.Cluster
