// Package grouter is a GPU-centric data plane for serverless inference
// workflows, reproducing "Efficient Data Passing for Serverless Inference
// Workflows: A GPU-Centric Approach" (EuroSys 2026) on a simulated GPU
// cluster substrate.
//
// The package is a convenience façade over the library's subsystems; user
// programs never import grouter/internal/... paths:
//
//   - grouter.NewSim builds a deterministic simulated cluster (DGX-V100,
//     DGX-A100, 8×H800 or 4×A10 nodes), configured through functional
//     options: WithNodes, WithSeed, WithTracer, WithFaults, WithCoalescing;
//   - Sim.NewGRouter / NewINFless / NewNVShmem / NewDeepPlan construct the
//     data planes, all implementing the same Plane interface (Put/Get/Free);
//   - Sim.NewCluster wires a data plane into a serverless runtime that
//     deploys workflow DAGs and executes requests;
//   - Sim.Tracer and Sim.Faults expose the virtual-time tracer and the
//     fault injector when the corresponding options are set.
//
// See examples/quickstart for the shortest end-to-end program and
// cmd/grouter-bench for the paper-reproduction experiments.
package grouter

import (
	"fmt"
	"time"

	"grouter/internal/autoscale"
	"grouter/internal/baselines"
	"grouter/internal/cluster"
	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/faults"
	"grouter/internal/kvcache"
	"grouter/internal/models"
	"grouter/internal/obs"
	"grouter/internal/router"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

// Re-exported core types: the façade lets downstream code use the library
// without spelling internal import paths.
type (
	// Plane is a serverless data plane (GROUTER or a baseline). Get returns
	// ErrNotFound for an unknown or freed object, ErrGPUDown when a
	// crash-lost object cannot be recovered, and ErrDeadline when a transfer
	// misses its SLO budget; Put returns ErrEvicted when storage cannot make
	// room even by spilling to host memory.
	Plane = dataplane.Plane
	// FnCtx identifies the calling function instance to the data plane.
	FnCtx = dataplane.FnCtx
	// DataRef names a stored intermediate-data object.
	DataRef = dataplane.DataRef
	// DataID is the global identifier inside a DataRef.
	DataID = dataplane.DataID
	// Stats aggregates a plane's activity counters.
	Stats = dataplane.Stats
	// CoalesceStats breaks down how coalesced Gets were served.
	CoalesceStats = dataplane.CoalesceStats
	// Location is a physical placement (node + GPU, or host memory).
	Location = fabric.Location
	// Config toggles GROUTER's optimizations (all enabled by default).
	Config = core.Config
	// Proc is a cooperative simulation process.
	Proc = sim.Proc
	// Signal is a one-shot completion notification; App.Submit and
	// LLMService.Submit return one fired when the request finishes.
	Signal = sim.Signal
	// Runtime is the serverless cluster runtime (deploys workflow DAGs).
	Runtime = cluster.Cluster
	// App is one deployed workflow application on a Runtime.
	App = cluster.App
	// ReplayOptions configures App.ReplayTrace's batched arrival admission.
	ReplayOptions = cluster.ReplayOptions
	// ReplayStats summarizes one replayed trace in virtual time.
	ReplayStats = cluster.ReplayStats
	// ScaleOutOptions configures ReplayScaleOut's pod fleet and sharded
	// execution (fleet shape is part of the result; shards are not).
	ScaleOutOptions = cluster.ShardedOptions
	// ScaleOutStats reports a ReplayScaleOut run: deterministic fleet-level
	// and per-pod results plus wall-clock shard utilization.
	ScaleOutStats = cluster.ShardedStats
	// PodReplay is one pod's share of a ReplayScaleOut run.
	PodReplay = cluster.PodReplay
	// ShardUtil is one engine shard's wall-clock busy/wait utilization.
	ShardUtil = sim.ShardUtil
	// Workflow is a DAG of serverless function stages.
	Workflow = workflow.Workflow
	// PlaceOptions constrains where a workflow's stages are placed.
	PlaceOptions = scheduler.Options
	// Tracer records virtual-time spans; export with its Perfetto/JSON
	// writers. Attached to a Sim via WithTracer.
	Tracer = obs.Tracer
	// FaultInjector schedules link failures, GPU crashes, and memory
	// pressure in virtual time. Attached to a Sim via WithFaults.
	FaultInjector = faults.Injector
	// Crasher is anything whose GPUs a FaultInjector can crash; both the
	// GROUTER plane and the runtime's planes implement it.
	Crasher = faults.Crasher
	// Router is the scored front-door request router; attach one to a
	// deployed app with Sim.NewRouter.
	Router = router.Router
	// RouterConfig tunes a Router (scoring weights, top-k, snapshot
	// refresh, QoS aging, crash blacklist).
	RouterConfig = router.Config
	// RouterWeights are the router's multi-objective scoring coefficients
	// (Session weights the session-affinity bias).
	RouterWeights = router.Weights
	// RouterStats counts a Router's decisions, refreshes, failovers,
	// admission outcomes, and affinity hits.
	RouterStats = router.Stats
	// RouterSLOConfig is the router's per-class SLO admission configuration;
	// set it on RouterConfig.SLO or Sim-wide with WithSLO.
	RouterSLOConfig = router.SLOConfig
	// RouterSLOClass is one QoS class's admission objective (latency budget
	// plus the deferral bound).
	RouterSLOClass = router.SLOClass
	// WorkerState is one worker's entry in the router's metrics snapshot.
	WorkerState = router.WorkerState
	// Elastic manages per-stage elastic instance pools on a deployed app;
	// attach one with Sim.Autoscale.
	Elastic = cluster.ElasticPools
	// ElasticConfig tunes elastic pools (strategy, replica bounds, controller
	// interval, cooldowns, pre-warmed provisioning).
	ElasticConfig = cluster.ElasticConfig
	// ElasticStats counts an Elastic's scale-outs, scale-ins, drains,
	// crashes, and recoveries.
	ElasticStats = cluster.ElasticStats
	// Autoscaler decides a pool's desired replica count from its metrics;
	// implement it to plug a custom strategy into ElasticConfig.Scaler.
	Autoscaler = autoscale.Autoscaler
	// PoolMetrics is the per-pool observation an Autoscaler sizes against.
	PoolMetrics = autoscale.PoolMetrics
	// FixedScaler pins a pool at a constant replica count.
	FixedScaler = autoscale.Fixed
	// ReactiveScaler scales on queue depth per active replica.
	ReactiveScaler = autoscale.Reactive
	// TargetUtilScaler sizes pools to hold a per-instance load setpoint.
	TargetUtilScaler = autoscale.TargetUtilization
	// PredictiveScaler sizes pools against a least-squares load forecast.
	PredictiveScaler = autoscale.Predictive
	// SLOAwareScaler scales on the router's predicted SLO miss rate
	// (PoolMetrics.Attainment) instead of raw queue depth.
	SLOAwareScaler = autoscale.SLOAware
	// QoS is a request priority class (QoSHigh skips QoSLow in worker
	// queues); set it per request with ReqQoS, or per replayed arrival
	// through ReplaySpec.RequestAt.
	QoS = cluster.QoS
	// LLMService is a deployed prefill/decode LLM serving app; build one
	// with Runtime.DeployLLM and route it with Sim.NewPDRouter.
	LLMService = cluster.LLMService
	// PDConfig sizes a DeployLLM service: served model, prefill/decode/mixed
	// worker partition, default request lengths, SLO scale.
	PDConfig = cluster.PDConfig
	// PDStats counts an LLMService's placement and KV-handoff activity.
	PDStats = cluster.PDStats
	// PDDecision is one PD routing decision (mode plus chosen workers).
	PDDecision = cluster.PDDecision
	// PDRouter is the prefill/decode routing policy attached to an
	// LLMService by Sim.NewPDRouter.
	PDRouter = router.PDRouter
	// PDPolicyConfig tunes a PDRouter (long-prompt threshold, saturation
	// depth, in-flight KV bound, session affinity).
	PDPolicyConfig = router.PDPolicyConfig
	// PDRouterStats counts a PDRouter's decisions, splits, and overflows.
	PDRouterStats = router.PDRouterStats
	// TraceSpec parameterizes synthetic arrival-trace generation.
	TraceSpec = trace.Spec
	// TracePattern selects the arrival process shape.
	TracePattern = trace.Pattern
	// KVSystem selects a KV-cache passing implementation.
	KVSystem = kvcache.System
	// KVCluster is the LLM KV-cache benchmark cluster.
	KVCluster = kvcache.Cluster
	// MoAConfig parameterizes a Mixture-of-Agents run on a KVCluster.
	MoAConfig = kvcache.MoAConfig
	// LLM describes a served LLM (weights, KV bytes/token, speeds).
	LLM = models.LLM
)

// HostGPU marks host memory in a Location.
const HostGPU = fabric.HostGPU

// Request priority classes (see QoS).
const (
	QoSLow  = cluster.QoSLow
	QoSHigh = cluster.QoSHigh
)

// DefaultRouterConfig returns the scored production router configuration.
func DefaultRouterConfig() RouterConfig { return router.DefaultConfig() }

// UniformRouterConfig returns the degenerate router configuration whose
// admission is byte-identical to placement-only round-robin (the
// differential oracle's configuration).
func UniformRouterConfig() RouterConfig { return router.Uniform() }

// Arrival-trace patterns (TraceSpec.Pattern).
const (
	Sporadic = trace.Sporadic
	Periodic = trace.Periodic
	Bursty   = trace.Bursty
)

// KV-cache passing systems for KVCluster benchmarks.
const (
	SysINFless  = kvcache.SysINFless
	SysMooncake = kvcache.SysMooncake
	SysGRouter  = kvcache.SysGRouter
)

// FullConfig returns the complete GROUTER system configuration.
func FullConfig() Config { return core.FullConfig() }

// GenerateTrace synthesizes request arrival offsets for the given spec.
func GenerateTrace(s TraceSpec) []time.Duration { return trace.Generate(s) }

// TrafficWorkflow returns the paper's Fig. 1 traffic-monitoring pipeline.
func TrafficWorkflow() *Workflow { return workflow.Traffic() }

// DrivingWorkflow returns the latency-critical road-segmentation workflow.
func DrivingWorkflow() *Workflow { return workflow.Driving() }

// VideoWorkflow returns the transfer-intensive video-analytics workflow.
func VideoWorkflow() *Workflow { return workflow.Video() }

// MustLookupLLM returns a profiled LLM by name ("llama-7b", ...), panicking
// on an unknown name.
func MustLookupLLM(name string) *LLM { return models.MustLookupLLM(name) }

// Sim is one deterministic simulation universe: an engine plus a cluster
// fabric. Every Sim is independent; identical inputs produce identical
// results.
type Sim struct {
	Engine *sim.Engine
	Fabric *fabric.Fabric

	opts     simOptions
	tracer   *obs.Tracer
	injector *faults.Injector
}

// NewSim builds a simulation of the named topology — "dgx-v100", "dgx-a100",
// "h800x8", or "quad-a10" — with one node unless WithNodes says otherwise:
//
//	s, err := grouter.NewSim("dgx-v100", grouter.WithNodes(2),
//	    grouter.WithSeed(7), grouter.WithTracer(), grouter.WithCoalescing())
func NewSim(spec string, opts ...Option) (*Sim, error) {
	s := topology.SpecByName(spec)
	if s == nil {
		return nil, fmt.Errorf("grouter: unknown topology %q", spec)
	}
	o := defaultSimOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if o.nodes < 1 {
		return nil, fmt.Errorf("grouter: simulation needs at least 1 node, got %d", o.nodes)
	}
	e := sim.NewEngine()
	sm := &Sim{Engine: e, opts: o}
	if o.trace {
		// Attach before the fabric exists so no early span is missed.
		sm.tracer = obs.Attach(e)
	}
	sm.Fabric = fabric.New(e, s, o.nodes)
	if o.faults {
		sm.injector = faults.NewInjector(e, sm.Fabric.Net)
	}
	return sm, nil
}

// MustNewSim is NewSim for tests and examples; it panics on a bad spec.
func MustNewSim(spec string, opts ...Option) *Sim {
	s, err := NewSim(spec, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Close terminates the simulation and its background processes.
func (s *Sim) Close() { s.Engine.Close() }

// Run executes the simulation until all non-daemon activity completes.
func (s *Sim) Run() { s.Engine.Run(0) }

// Go spawns a simulation process.
func (s *Sim) Go(name string, body func(p *Proc)) { s.Engine.Go(name, body) }

// Schedule runs fn at the given virtual time (for request arrival traces).
func (s *Sim) Schedule(at time.Duration, fn func()) { s.Engine.Schedule(at, fn) }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.Engine.Now() }

// Tracer returns the virtual-time tracer, or nil unless the Sim was built
// WithTracer.
func (s *Sim) Tracer() *Tracer { return s.tracer }

// Faults returns the fault injector, or nil unless the Sim was built
// WithFaults.
func (s *Sim) Faults() *FaultInjector { return s.injector }

// NewGRouter builds the GPU-centric data plane on this simulation. With no
// argument it runs the full system, inheriting the Sim's WithSeed and
// WithCoalescing options; an explicit Config overrides all of that.
func (s *Sim) NewGRouter(cfg ...Config) Plane {
	c := FullConfig()
	c.Seed = s.opts.seed
	c.Coalesce = s.opts.coalesce
	if len(cfg) > 0 {
		c = cfg[0]
	}
	return core.New(s.Fabric, c)
}

// NewINFless builds the host-centric baseline.
func (s *Sim) NewINFless() Plane { return baselines.NewINFless(s.Fabric) }

// NewNVShmem builds the placement-agnostic GPU-store baseline.
func (s *Sim) NewNVShmem(seed int64) Plane { return baselines.NewNVShmem(s.Fabric, seed) }

// NewDeepPlan builds the parallel-PCIe GPU-store baseline.
func (s *Sim) NewDeepPlan(seed int64) Plane { return baselines.NewDeepPlan(s.Fabric, seed) }

// NewCluster wires a data plane into a serverless runtime on this Sim's
// fabric, so the runtime shares the Sim's tracer and fault injector:
//
//	c := s.NewCluster(func(s *grouter.Sim) grouter.Plane { return s.NewGRouter() })
//	app := c.Deploy(grouter.TrafficWorkflow(), 0, grouter.PlaceOptions{Node: 0})
func (s *Sim) NewCluster(mkPlane func(s *Sim) Plane) *Runtime {
	return cluster.NewOnFabric(s.Fabric, 1, func(*fabric.Fabric) dataplane.Plane {
		return mkPlane(s)
	})
}

// NewRouter attaches a scored front-door router to a deployed app: stage
// activations route to the best-scored healthy pool instance instead of
// round-robin. The configuration comes from, in precedence order, the
// explicit argument, WithRouter's value, or DefaultRouterConfig; a WithSLO
// admission configuration is folded in unless the resolved config already
// enables one. When the Sim carries a fault injector (WithFaults), the
// router subscribes to its GPU crash signals and fails over away from
// crashed workers:
//
//	app := c.Deploy(grouter.DrivingWorkflow(), 0, grouter.PlaceOptions{Node: 0})
//	rt := s.NewRouter(app)
//	app.Replay(arrivals, grouter.ReplaySpec{RequestAt: func(i int) grouter.Request {
//	    if (i+1)%10 == 0 {
//	        return grouter.NewRequest(grouter.ReqQoS(grouter.QoSHigh))
//	    }
//	    return grouter.NewRequest()
//	}})
func (s *Sim) NewRouter(app *App, cfg ...RouterConfig) *Router {
	c := router.DefaultConfig()
	if s.opts.router {
		c = s.opts.routerCfg
	}
	if len(cfg) > 0 {
		c = cfg[0]
	}
	if s.opts.slo && !c.SLO.Enabled() {
		c.SLO = s.opts.sloCfg
	}
	r := router.New(app, c)
	if s.injector != nil {
		r.WatchFaults(s.injector)
	}
	return r
}

// DefaultPDPolicy returns the production prefill/decode routing policy:
// split at 1024 prompt tokens, overflow above depth 4 or 8 in-flight KV
// handoffs, session affinity on.
func DefaultPDPolicy() PDPolicyConfig { return router.DefaultPDPolicy() }

// NewPDRouter attaches a prefill/decode routing policy to a deployed LLM
// service: long-prompt requests split across prefill/decode worker pairs
// with the KV cache handed off over the data plane, short ones run
// colocated, and saturated PD capacity overflows back to colocated
// execution. The configuration comes from, in precedence order, the
// explicit argument, WithPD's value, or DefaultPDPolicy:
//
//	svc, err := c.DeployLLM(grouter.PDConfig{
//	    LLM:            grouter.MustLookupLLM("llama-7b"),
//	    PrefillWorkers: 1, DecodeWorkers: 1, MixedWorkers: 6,
//	})
//	rt := s.NewPDRouter(svc)
//	done, err := svc.Submit(grouter.NewRequest(
//	    grouter.ReqPrompt(8192), grouter.ReqSession(7)))
func (s *Sim) NewPDRouter(svc *LLMService, cfg ...PDPolicyConfig) *PDRouter {
	c := router.DefaultPDPolicy()
	if s.opts.pd {
		c = s.opts.pdCfg
	}
	if len(cfg) > 0 {
		c = cfg[0]
	}
	return router.NewPD(svc, c)
}

// DefaultElasticConfig returns the reactive production elastic-pool
// configuration (queue-depth reactive scaler, pre-warmed provisioning).
func DefaultElasticConfig() ElasticConfig { return cluster.DefaultElastic() }

// Autoscale enables elastic per-stage instance pools on a deployed app:
// a virtual-time controller grows and shrinks each GPU stage's pool between
// the configured bounds, draining instances before teardown. The
// configuration comes from, in precedence order, the explicit argument,
// WithAutoscaler's value, or DefaultElasticConfig. When the Sim carries a
// fault injector (WithFaults), the pools subscribe to its GPU crash signals
// and route around crashed replicas until they recover:
//
//	app := c.Deploy(grouter.DrivingWorkflow(), 0, grouter.PlaceOptions{Node: 0})
//	ep := s.Autoscale(app, grouter.ElasticConfig{
//	    Scaler: grouter.ReactiveScaler{ScaleOutDepth: 2, ScaleIn: true},
//	    Min:    1, Max: 4, Prewarm: true,
//	})
//	app.Replay(arrivals, grouter.ReplaySpec{})
//	fmt.Println(ep.GPUSeconds(), ep.Stats)
func (s *Sim) Autoscale(app *App, cfg ...ElasticConfig) *Elastic {
	c := cluster.DefaultElastic()
	if s.opts.elastic {
		c = s.opts.elasticCfg
	}
	if len(cfg) > 0 {
		c = cfg[0]
	}
	ep := app.EnableElastic(c)
	if s.injector != nil {
		ep.WatchFaults(s.injector)
	}
	return ep
}

// NewKVCluster builds an n-node LLM KV-cache benchmark cluster on this
// simulation's engine. It carries its own 8×H800 fabric, sized for
// tensor-parallel KV exchange, independent of the Sim's fabric.
func (s *Sim) NewKVCluster(n int) *KVCluster { return kvcache.NewCluster(s.Engine, n) }

// ReplayScaleOut replays an arrival trace over a fleet of independent pods —
// each a full cluster of the named topology whose data plane and workflow
// the buildPod callback deploys — executed on the sharded parallel engine:
//
//	st, err := grouter.ReplayScaleOut("dgx-v100", arrivals,
//	    func(pod int, s *grouter.Sim) *grouter.App {
//	        c := s.NewCluster(func(s *grouter.Sim) grouter.Plane { return s.NewGRouter() })
//	        return c.Deploy(grouter.DrivingWorkflow(), 0, grouter.PlaceOptions{Node: 0})
//	    },
//	    grouter.WithNodes(2), grouter.WithShards(4))
//
// buildPod runs once per pod on that pod's private Sim (sharing the shard
// engine hosting the pod) and must build every pod identically given the
// same index. WithShards picks the shard count — a pure execution knob; the
// returned stats' deterministic fields are byte-identical for any value.
// WithTracer attaches a shard-tagged tracer per shard, returned in
// ScaleOutStats.Tracers and mergeable into one Chrome trace. Request i goes
// to pod i mod ScaleOutOptions' default fleet width (8 pods).
func ReplayScaleOut(spec string, arrivals []time.Duration, buildPod func(pod int, s *Sim) *App, opts ...Option) (ScaleOutStats, error) {
	ts := topology.SpecByName(spec)
	if ts == nil {
		return ScaleOutStats{}, fmt.Errorf("grouter: unknown topology %q", spec)
	}
	o := defaultSimOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if o.nodes < 1 {
		return ScaleOutStats{}, fmt.Errorf("grouter: simulation needs at least 1 node, got %d", o.nodes)
	}
	st := cluster.ShardedReplay(arrivals, cluster.ShardedOptions{
		Shards: o.shards,
		Trace:  o.trace,
	}, func(pod int, e *sim.Engine) *cluster.App {
		sm := &Sim{Engine: e, opts: o, tracer: obs.TracerOf(e)}
		sm.Fabric = fabric.New(e, ts, o.nodes)
		if o.faults {
			sm.injector = faults.NewInjector(e, sm.Fabric.Net)
		}
		return buildPod(pod, sm)
	})
	return st, nil
}

// NewSimN builds a simulation of n nodes of the named topology.
//
// Deprecated: use NewSim(spec, WithNodes(n)).
func NewSimN(spec string, n int) (*Sim, error) { return NewSim(spec, WithNodes(n)) }

// MustNewSimN is MustNewSim with a node count.
//
// Deprecated: use MustNewSim(spec, WithNodes(n)).
func MustNewSimN(spec string, n int) *Sim { return MustNewSim(spec, WithNodes(n)) }
